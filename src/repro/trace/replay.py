"""Offline replay: feed a stored trace through the lifeguard pipeline.

Replay decouples log *production* from log *consumption*: a workload is
executed (and captured) once, then the stored record stream is pushed
through the acceleration pipeline (:class:`EventAccelerator`) and an
:class:`EventDispatcher` without re-running the ISA machine.  Because the
functional event stream is fully determined by the records, a sequential
replay reproduces the live run's delivered events, handler work and error
reports exactly; only cache-latency cycle details differ (replay does not
model the shared application/lifeguard cache hierarchy by default).

:class:`ParallelReplay` shards the trace's chunks across
``multiprocessing`` workers, each owning a private lifeguard instance, and
merges the per-shard :class:`DispatchStats`/:class:`AcceleratorStats` and
error reports.  Sharding trades cross-chunk lifeguard state (a shard does
not see metadata updates from earlier shards) for near-linear consumption
throughput -- the same decomposition the paper uses to spread monitoring
across multiple lifeguard cores.  ``run_sequential()`` applies the exact
same sharding in-process, so parallel and sequential sharded replays are
bit-for-bit comparable.

Sharded replay is backed by shared memory by default (see
:mod:`repro.trace.shm`): the parent pre-decodes each shard's chunks into
packed column buffers inside a named ``multiprocessing.shared_memory``
segment, and the worker attaches zero-copy :class:`RecordColumns` views
instead of re-decoding -- only small descriptors and compact result
deltas cross the process boundary.  Pass ``shared_memory=False`` to
force the classic decode-in-worker path.

Sharded replay is *supervised* (see :mod:`repro.trace.supervisor`): worker
crashes, hangs and reader IO errors are retried with exponential backoff,
repeatedly-failing spans are bisected to isolate poison chunks, and every
failure is recorded on the merged result.  Damaged chunks are handled per
the ``quarantine`` policy: ``strict`` (default) raises
:class:`~repro.trace.tracefile.TraceFormatError` /
:class:`~repro.trace.supervisor.ReplayError` naming the chunk, while
``degrade`` skips the chunk, keeps replaying, and reports exact
skipped-chunk/record accounting in :attr:`ReplayResult.skipped_chunks`.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import astuple, dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Type, Union

from repro.core.accelerator import AcceleratorConfig, AcceleratorStats, EventAccelerator
from repro.core.stats import sum_stats
from repro.core.config import SystemConfig
from repro.lba.columnar import ColumnarEngine
from repro.lba.dispatch import DispatchStats, EventDispatcher
from repro.lifeguards import ALL_LIFEGUARDS
from repro.lifeguards.base import Lifeguard
from repro.lifeguards.reports import ErrorKind, ErrorReport, merge_reports
from repro.obs.runtime import OBS
from repro.trace.shm import (
    SegmentPool,
    ShardSegment,
    attach_segment,
    shared_memory_available,
)
from repro.trace.supervisor import (
    QUARANTINE_POLICIES,
    QuarantinedChunk,
    ReplayError,
    ShardFailure,
    ShardSupervisor,
    SupervisorPolicy,
)
from repro.trace.codec import RecordColumns, TraceCodecError
from repro.trace.tracefile import TraceFormatError, TraceReader

#: Exceptions that mean "this chunk's bytes are damaged" (as opposed to an
#: environmental IO failure): eligible for quarantine under ``degrade``.
_CHUNK_DAMAGE_ERRORS = (TraceFormatError, TraceCodecError)

LifeguardSpec = Union[str, Type[Lifeguard]]

#: Upper bound on the default worker count: sharded replay is CPU-bound, so
#: there is no benefit past the core count, and on very wide machines the
#: per-process lifeguard setup dominates before that.
MAX_DEFAULT_WORKERS = 8


def default_workers() -> int:
    """Bounded default replay worker count: ``min(os.cpu_count(), 8)``."""
    return max(1, min(os.cpu_count() or 1, MAX_DEFAULT_WORKERS))


def _resolve_workers(workers: Optional[int]) -> int:
    """Apply the bounded default and reject non-positive worker counts."""
    if workers is None:
        return default_workers()
    if workers < 1:
        raise ValueError(
            f"workers must be >= 1, got {workers} "
            "(pass None for the bounded os.cpu_count() default)"
        )
    return workers


def _resolve_lifeguard(spec: LifeguardSpec) -> Type[Lifeguard]:
    """Resolve a lifeguard name or class to a class (names stay picklable)."""
    if isinstance(spec, str):
        try:
            return ALL_LIFEGUARDS[spec]
        except KeyError:
            raise KeyError(
                f"unknown lifeguard {spec!r}; known: {sorted(ALL_LIFEGUARDS)}"
            ) from None
    return spec


def build_pipeline(
    lifeguard: Lifeguard, config: Optional[SystemConfig] = None
) -> Tuple[EventAccelerator, EventDispatcher]:
    """Wire a lifeguard to a freshly configured accelerator + dispatcher.

    Applies the same Figure 2 technique gating as the live platform
    (:meth:`SystemConfig.gated_for`).
    """
    effective = (config or SystemConfig()).gated_for(lifeguard)
    accelerator = EventAccelerator(lifeguard.etct, AcceleratorConfig.from_system(effective))
    lifeguard.attach_hardware(accelerator.mtlb)
    dispatcher = EventDispatcher(lifeguard, accelerator)
    return accelerator, dispatcher


@dataclass
class ReplayResult:
    """Merged outcome of one (possibly sharded) replay."""

    lifeguard: str
    records: int
    chunks: int
    workers: int
    dispatch: DispatchStats
    accelerator: AcceleratorStats
    reports: List[ErrorReport] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: Per-worker wall-time breakdowns (setup/decode/dispatch/serialize/IPC);
    #: populated by sharded replays when timing collection is on.
    worker_timings: List[dict] = field(default_factory=list)
    #: Chunks excluded under ``quarantine="degrade"`` (corrupt, poison or
    #: retry-exhausted), sorted by (trace_path, chunk), with exact record
    #: accounting.  Always empty under ``strict``.
    skipped_chunks: List[QuarantinedChunk] = field(default_factory=list)
    #: Every failed shard attempt the supervisor observed (including ones
    #: that later succeeded on retry).
    failures: List[ShardFailure] = field(default_factory=list)
    #: Supervision counters (worker_retries, worker_timeouts, worker_crashes,
    #: worker_errors, bisections, bisect_probes, fallbacks_inprocess,
    #: chunks_quarantined, records_quarantined).
    fault_counters: Dict[str, int] = field(default_factory=dict)

    @property
    def errors_detected(self) -> int:
        """Number of violations reported across all shards."""
        return len(self.reports)

    @property
    def records_per_second(self) -> float:
        """Consumption throughput of this replay."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.records / self.wall_seconds

    @property
    def skipped_records(self) -> int:
        """Records lost to quarantined chunks (0 for a clean replay)."""
        return sum(chunk.records for chunk in self.skipped_chunks)

    @property
    def degraded(self) -> bool:
        """True when any chunk was quarantined instead of replayed."""
        return bool(self.skipped_chunks)


def _validate_quarantine(policy: str) -> str:
    if policy not in QUARANTINE_POLICIES:
        raise ValueError(
            f"quarantine must be one of {QUARANTINE_POLICIES}, got {policy!r}"
        )
    return policy


def _finish_pipeline(
    lifeguard: Lifeguard, accelerator: EventAccelerator, dispatcher: EventDispatcher
) -> Tuple[DispatchStats, AcceleratorStats, List[ErrorReport]]:
    """Finalize a consumed pipeline and collect its observable outcome."""
    lifeguard.finalize()
    return dispatcher.stats, accelerator.stats, list(lifeguard.reports)


def replay_records(
    records, lifeguard: Lifeguard, config: Optional[SystemConfig] = None
) -> Tuple[DispatchStats, AcceleratorStats, List[ErrorReport]]:
    """Consume a record sequence through ``lifeguard``; returns the stats.

    Flattens the records into columns and dispatches them through the
    run-grouped columnar engine, which produces bit-identical stats,
    cycles and reports to a per-record ``consume`` loop at a fraction of
    the interpreter overhead.
    """
    accelerator, dispatcher = build_pipeline(lifeguard, config)
    ColumnarEngine(dispatcher).consume_records(records)
    return _finish_pipeline(lifeguard, accelerator, dispatcher)


def replay_trace(
    trace_path: str,
    lifeguard: LifeguardSpec,
    config: Optional[SystemConfig] = None,
    quarantine: str = "strict",
) -> ReplayResult:
    """Sequentially replay a whole stored trace through one lifeguard.

    This is the faithful single-consumer replay: one lifeguard instance
    observes every record in order, so its reports and delivered-event
    counts match the live monitored run exactly.

    ``quarantine="strict"`` (default) raises
    :class:`~repro.trace.tracefile.TraceFormatError` on the first damaged
    chunk; ``"degrade"`` skips damaged chunks and records them in
    :attr:`ReplayResult.skipped_chunks`.
    """
    _validate_quarantine(quarantine)
    lifeguard_cls = _resolve_lifeguard(lifeguard)
    instance = lifeguard_cls()
    tracer = OBS.tracer if OBS.enabled else None
    start = time.perf_counter()
    accelerator, dispatcher = build_pipeline(instance, config)
    engine = ColumnarEngine(dispatcher)
    if tracer is not None:
        tracer.add("replay.setup", "replay", start, time.perf_counter() - start)
    skipped: List[QuarantinedChunk] = []
    with TraceReader(trace_path) as reader:
        chunks = reader.num_chunks
        if tracer is None and quarantine == "strict":
            for index in range(chunks):
                # One column-decoded chunk feeds one run-grouped columnar
                # dispatch call (bit-identical to the scalar consume loop).
                engine.consume_columns(reader.read_chunk_columns(index))
        else:
            for index in range(chunks):
                t_decode = time.perf_counter()
                try:
                    columns = reader.read_chunk_columns(index)
                except _CHUNK_DAMAGE_ERRORS as exc:
                    if quarantine != "degrade":
                        raise
                    skipped.append(QuarantinedChunk(
                        trace_path=str(trace_path), chunk=index,
                        records=reader.chunks[index].records,
                        reason="corrupt", detail=str(exc),
                    ))
                    continue
                t_dispatch = time.perf_counter()
                if tracer is not None:
                    tracer.add("replay.decode", "replay", t_decode, t_dispatch - t_decode)
                engine.consume_columns(columns)
                if tracer is not None:
                    tracer.add(
                        "replay.dispatch", "replay", t_dispatch,
                        time.perf_counter() - t_dispatch,
                    )
    t_finish = time.perf_counter()
    dispatch, accel, reports = _finish_pipeline(instance, accelerator, dispatcher)
    if OBS.enabled:
        if tracer is not None:
            tracer.add("replay.finish", "replay", t_finish, time.perf_counter() - t_finish)
        if OBS.registry is not None:
            from repro.obs.pipeline import collect_pipeline

            registry = OBS.registry
            registry.counter("replay.chunks").inc(chunks)
            registry.counter("replay.records").inc(dispatch.records_consumed)
            if skipped:
                registry.counter("replay.chunks_quarantined").inc(len(skipped))
                registry.counter("replay.records_quarantined").inc(
                    sum(chunk.records for chunk in skipped)
                )
            collect_pipeline(
                registry,
                dispatcher=dispatcher,
                accelerator=accelerator,
                lifeguard=instance,
                recorder=OBS.recorder,
                engine=engine,
            )
    return ReplayResult(
        lifeguard=lifeguard_cls.name,
        records=dispatch.records_consumed,
        chunks=chunks,
        workers=1,
        dispatch=dispatch,
        accelerator=accel,
        reports=reports,
        wall_seconds=time.perf_counter() - start,
        skipped_chunks=skipped,
    )


# ---------------------------------------------------------------------- sharded


def _contiguous_spans(num_chunks: int, workers: int) -> List[List[int]]:
    """Split ``range(num_chunks)`` into up to ``workers`` contiguous spans."""
    if not num_chunks:
        return []
    workers = min(workers, num_chunks)
    base, extra = divmod(num_chunks, workers)
    spans: List[List[int]] = []
    start = 0
    for worker in range(workers):
        length = base + (1 if worker < extra else 0)
        spans.append(list(range(start, start + length)))
        start += length
    return spans


@dataclass(frozen=True)
class ShardTask:
    """Picklable unit of supervised replay work: one chunk span of one trace.

    The frozen-dataclass shape is what lets the supervisor derive probe and
    final tasks with :func:`dataclasses.replace` during span bisection.
    """

    trace_path: str
    lifeguard: str
    config: Optional[SystemConfig]
    #: Contiguous chunk indices this shard replays, in order.
    chunks: Tuple[int, ...]
    #: Record count per chunk (parallel to ``chunks``) for quarantine
    #: accounting without re-opening the trace in the parent.
    chunk_records: Tuple[int, ...]
    collect_timing: bool = False
    quarantine: str = "strict"
    #: Chunks to quarantine without reading (poison chunks isolated by span
    #: bisection -- reading them is what killed the workers).
    skip: FrozenSet[int] = frozenset()
    #: Optional :class:`repro.faultinject.FaultPlan`, fired once per chunk
    #: read; ``None`` in production.
    fault_plan: Optional[object] = None
    #: Shared-memory segment descriptor set by the parent's pre-decode
    #: stage (:class:`repro.trace.shm.SegmentPool`).  Chunks present in the
    #: segment are consumed as zero-copy column views; chunks absent from
    #: it (or the whole span when ``None``) are read from the trace file.
    segment: Optional[ShardSegment] = None


@dataclass
class _ShardResult:
    """Picklable result of replaying one contiguous span of chunks."""

    records: int
    dispatch: DispatchStats
    accelerator: AcceleratorStats
    reports: List[ErrorReport]
    #: chunks this worker quarantined (damage found, or skip-set poison)
    skipped: List[QuarantinedChunk] = field(default_factory=list)
    #: wall-time breakdown of this shard (only when timing collection is on)
    timing: Optional[dict] = None
    #: accelerator/mapper/shadow counter detail (only when collection is on):
    #: the live IT/IF/M-TLB objects never cross the process boundary, so the
    #: worker captures their counters as plain dicts for the parent registry
    detail: Optional[dict] = None

    # The pickled form is a compact tuple of primitives: stats dataclasses
    # flatten to field tuples and each ErrorReport to one 6-tuple, instead
    # of a per-object class/dict round-trip.  This is the "results stop
    # round-tripping full reports through pickle" half of shared-memory
    # replay; ``merge_reports``/``sum_stats`` consume the reconstruction
    # unchanged.

    def __getstate__(self):
        return (
            self.records,
            astuple(self.dispatch),
            astuple(self.accelerator),
            [
                (r.kind.value, r.lifeguard, r.pc, r.address, r.thread_id, r.message)
                for r in self.reports
            ],
            [astuple(chunk) for chunk in self.skipped],
            self.timing,
            self.detail,
        )

    def __setstate__(self, state):
        records, dispatch, accelerator, reports, skipped, timing, detail = state
        self.records = records
        self.dispatch = DispatchStats(*dispatch)
        self.accelerator = AcceleratorStats(*accelerator)
        self.reports = [
            ErrorReport(ErrorKind(kind), lifeguard, pc, address, thread_id, message)
            for kind, lifeguard, pc, address, thread_id, message in reports
        ]
        self.skipped = [QuarantinedChunk(*chunk) for chunk in skipped]
        self.timing = timing
        self.detail = detail


def _replay_shard(task: ShardTask) -> _ShardResult:
    """Worker entry point: replay one shard task with a fresh lifeguard.

    Runs in a supervised child process (or in-process for sequential and
    fallback replays).  Under ``quarantine="degrade"`` a damaged chunk is
    skipped and recorded instead of raising; chunks in ``task.skip`` are
    quarantined without being read at all.  When timing collection is on,
    ``monotonic`` start/end are system-wide comparable on Linux, so the
    parent can line worker lifetimes up against its own clock; the
    serialize cost is measured by pickling the result exactly as the IPC
    return path will (the timing dict itself rides along un-measured).
    """
    mono_start = time.monotonic()
    wall_start = time.perf_counter()
    plan = task.fault_plan
    degrade = task.quarantine == "degrade"
    lifeguard = ALL_LIFEGUARDS[task.lifeguard]()
    accelerator, dispatcher = build_pipeline(lifeguard, task.config)
    engine = ColumnarEngine(dispatcher)
    setup_s = time.perf_counter() - wall_start
    decode_s = 0.0
    dispatch_s = 0.0
    shm_attach_s = 0.0
    skipped: List[QuarantinedChunk] = []
    # Attach this shard's pre-decoded segment (if the parent packed one);
    # chunks it holds dispatch as zero-copy views, the rest read from file.
    shm = None
    packed_chunks = {}
    if task.segment is not None:
        t_attach = time.perf_counter()
        try:
            shm = attach_segment(task.segment.name)
            packed_chunks = task.segment.chunk_map()
        except OSError:
            shm = None
            packed_chunks = {}
        shm_attach_s += time.perf_counter() - t_attach
    reader: Optional[TraceReader] = None
    try:
        for position, index in enumerate(task.chunks):
            if index in task.skip:
                skipped.append(QuarantinedChunk(
                    trace_path=task.trace_path, chunk=index,
                    records=task.chunk_records[position], reason="poison",
                    detail="isolated by span bisection",
                ))
                continue
            if plan is not None:
                plan.fire(index)
            packed = packed_chunks.get(index)
            if packed is not None:
                t_attach = time.perf_counter()
                region = shm.buf[packed.offset:packed.offset + packed.layout.nbytes]
                try:
                    columns = RecordColumns.from_buffers(packed.layout, region)
                finally:
                    region.release()
                shm_attach_s += time.perf_counter() - t_attach
                t_dispatch = time.perf_counter()
                try:
                    # One pre-decoded chunk feeds one columnar dispatch call.
                    engine.consume_columns(columns)
                finally:
                    columns.release()
                dispatch_s += time.perf_counter() - t_dispatch
                continue
            t_decode = time.perf_counter()
            try:
                if reader is None:
                    reader = TraceReader(task.trace_path)
                columns = reader.read_chunk_columns(index)
            except _CHUNK_DAMAGE_ERRORS as exc:
                if not degrade:
                    raise
                skipped.append(QuarantinedChunk(
                    trace_path=task.trace_path, chunk=index,
                    records=task.chunk_records[position], reason="corrupt",
                    detail=str(exc),
                ))
                continue
            t_dispatch = time.perf_counter()
            decode_s += t_dispatch - t_decode
            # One column-decoded chunk feeds one columnar dispatch call.
            engine.consume_columns(columns)
            dispatch_s += time.perf_counter() - t_dispatch
    finally:
        if reader is not None:
            reader.close()
        if shm is not None:
            shm.close()
    dispatch, accel, reports = _finish_pipeline(lifeguard, accelerator, dispatcher)
    result = _ShardResult(
        records=dispatch.records_consumed,
        dispatch=dispatch,
        accelerator=accel,
        reports=reports,
        skipped=skipped,
    )
    if not task.collect_timing:
        return result
    from repro.obs.pipeline import shard_detail

    result.detail = shard_detail(accelerator, lifeguard)
    t_serialize = time.perf_counter()
    pickle.dumps(result)
    serialize_s = time.perf_counter() - t_serialize
    result.timing = {
        "pid": os.getpid(),
        "chunks": len(task.chunks),
        "records": result.records,
        "setup_s": setup_s,
        "decode_s": decode_s,
        "dispatch_s": dispatch_s,
        "serialize_s": serialize_s,
        # Segment attach + zero-copy column reconstruction (this worker)
        # and the parent-side pre-decode/pack cost of this shard's segment:
        # together they replace decode_s + most of the old serialize/IPC
        # attribution when the shared-memory path is on.
        "shm_attach_s": shm_attach_s,
        "predecode_s": task.segment.predecode_s if task.segment is not None else 0.0,
        "worker_wall_s": time.perf_counter() - wall_start,
        "mono_start": mono_start,
        "mono_end": time.monotonic(),
    }
    return result


def _collect_telemetry(result: ReplayResult, shard_results: List[_ShardResult]) -> None:
    """Fold a merged sharded replay into the enabled telemetry registry.

    Runs in the parent at merge time: shard workers are separate processes
    whose registries (if any) die with them, so the accelerator counters
    travel back as picklable ``detail`` dicts on the shard results.
    """
    if not OBS.enabled or OBS.registry is None:
        return
    from repro.obs.pipeline import collect_sharded_replay

    collect_sharded_replay(
        OBS.registry, result,
        [shard.detail for shard in shard_results if shard.detail],
    )


def _worker_timings(shard_results: List[_ShardResult], elapsed: float) -> List[dict]:
    """Attach per-shard IPC attribution to the shard timing breakdowns.

    ``ipc_s`` is the slice of *this shard's* supervised lifetime its worker
    did not spend computing: process spawn, task pickling, pipe wait and
    result unpickling.  The supervisor stamps ``mono_launched`` (just
    before the worker process starts) and ``mono_received`` (when its
    result arrives) onto the timing dict, and the worker's own
    ``mono_start``/``mono_end`` bracket the compute; the difference of the
    two intervals is the shard's real transfer+wait cost.  Earlier versions
    derived ``ipc_s`` from the parent's *total* elapsed time, which billed
    every worker for its siblings' runtimes and made the attribution grow
    with worker count regardless of actual IPC.  Shards replayed in-process
    (sequential reference, supervisor fallback) have no hand-off, so their
    ``ipc_s`` is 0.
    """
    timings = []
    for shard in shard_results:
        if not shard.timing:
            continue
        timing = dict(shard.timing)
        launched = timing.pop("mono_launched", None)
        received = timing.pop("mono_received", None)
        if launched is not None and received is not None:
            compute = timing.get("mono_end", 0.0) - timing.get("mono_start", 0.0)
            timing["ipc_s"] = max(0.0, (received - launched) - compute)
        else:
            timing["ipc_s"] = 0.0
        timings.append(timing)
    return timings


def _merge_results(
    lifeguard_name: str,
    num_chunks: int,
    shard_results: List[_ShardResult],
    workers: int,
    elapsed: float,
    outcome=None,
) -> ReplayResult:
    """Fold shard results (and an optional supervision outcome) into one
    :class:`ReplayResult`.

    ``sum_stats`` is field-wise and ``merge_reports`` sorts
    deterministically, so the merge is insensitive to shard completion
    order -- the property that makes parallel and sequential replays
    bit-identical.  Handles the empty-trace case (no shards) by producing
    zeroed stats.
    """
    dispatch = sum_stats(DispatchStats, [s.dispatch for s in shard_results])
    accel = sum_stats(AcceleratorStats, [s.accelerator for s in shard_results])
    reports = merge_reports(*[s.reports for s in shard_results])
    skipped = [chunk for shard in shard_results for chunk in shard.skipped]
    failures: List[ShardFailure] = []
    counters: Dict[str, int] = {}
    if outcome is not None:
        skipped.extend(outcome.quarantined)
        failures = list(outcome.failures)
        counters = dict(outcome.counters)
    skipped.sort(key=lambda chunk: (chunk.trace_path, chunk.chunk))
    if skipped:
        counters["chunks_quarantined"] = len(skipped)
        counters["records_quarantined"] = sum(c.records for c in skipped)
    result = ReplayResult(
        lifeguard=lifeguard_name,
        records=sum(s.records for s in shard_results),
        chunks=num_chunks,
        workers=workers,
        dispatch=dispatch,
        accelerator=accel,
        reports=reports,
        wall_seconds=elapsed,
        worker_timings=_worker_timings(shard_results, elapsed),
        skipped_chunks=skipped,
        failures=failures,
        fault_counters=counters,
    )
    _collect_telemetry(result, shard_results)
    return result


class ParallelReplay:
    """Shard a trace's chunks across supervised workers, each owning a lifeguard.

    Workers receive contiguous chunk spans (chunk boundaries are codec
    reset points, so any span decodes independently).  Per-shard stats are
    summed field-wise and reports are merged deterministically, so
    ``run()`` with N processes and ``run_sequential()`` produce identical
    results.

    ``run()`` executes shards under a :class:`ShardSupervisor`: crashed,
    hung or IO-failing workers are retried with backoff, persistent
    failures are bisected down to the poison chunk, and -- under
    ``quarantine="degrade"`` -- damaged chunks are skipped with exact
    accounting instead of failing the replay.  ``policy`` tunes the
    supervision knobs; ``fault_plan`` injects deterministic faults into the
    workers (testing only).
    """

    def __init__(
        self,
        trace_path: str,
        lifeguard: LifeguardSpec,
        config: Optional[SystemConfig] = None,
        workers: Optional[int] = None,
        collect_timing: bool = False,
        quarantine: str = "strict",
        policy: Optional[SupervisorPolicy] = None,
        fault_plan=None,
        shared_memory: Optional[bool] = None,
    ) -> None:
        self.trace_path = str(trace_path)
        self.lifeguard_cls = _resolve_lifeguard(lifeguard)
        self.config = config
        self.workers = _resolve_workers(workers)
        self.collect_timing = collect_timing
        self.quarantine = _validate_quarantine(quarantine)
        self.policy = policy
        self.fault_plan = fault_plan
        # Default on where the platform supports it: workers attach to
        # pre-decoded column buffers instead of re-decoding from the file.
        self.shared_memory = (
            shared_memory_available() if shared_memory is None else bool(shared_memory)
        )
        with TraceReader(trace_path) as reader:
            self.num_chunks = reader.num_chunks
            self._chunk_records = reader.chunk_record_counts()

    def shards(self) -> List[List[int]]:
        """Contiguous chunk-index spans, one per worker (empty spans dropped)."""
        return _contiguous_spans(self.num_chunks, self.workers)

    def _shard_tasks(self, collect_timing: bool = False) -> List[ShardTask]:
        return [
            ShardTask(
                trace_path=self.trace_path,
                lifeguard=self.lifeguard_cls.name,
                config=self.config,
                chunks=tuple(span),
                chunk_records=tuple(self._chunk_records[i] for i in span),
                collect_timing=collect_timing,
                quarantine=self.quarantine,
                fault_plan=self.fault_plan,
            )
            for span in self.shards()
        ]

    def _collect_timing(self) -> bool:
        """Timing is on when requested explicitly or telemetry is enabled."""
        return self.collect_timing or OBS.enabled

    def run_sequential(self) -> ReplayResult:
        """Replay every shard in-process (reference for the parallel path)."""
        start = time.perf_counter()
        results = [_replay_shard(task) for task in self._shard_tasks(self._collect_timing())]
        return _merge_results(
            self.lifeguard_cls.name, self.num_chunks, results,
            workers=1, elapsed=time.perf_counter() - start,
        )

    def run(self) -> ReplayResult:
        """Replay shards across supervised worker processes and merge.

        Raises :class:`ReplayError` for unrecoverable shards under
        ``strict``; never leaks child processes, including on
        ``KeyboardInterrupt``.
        """
        tasks = self._shard_tasks(self._collect_timing())
        if len(tasks) <= 1 and self.policy is None and self.fault_plan is None:
            # Nothing to supervise: zero or one shard with default policy
            # runs in-process (identical semantics, no spawn cost).
            return self.run_sequential()
        start = time.perf_counter()
        supervisor = ShardSupervisor(
            tasks,
            _replay_shard,
            policy=self.policy,
            max_parallel=min(self.workers, max(1, len(tasks))),
            lifeguard=self.lifeguard_cls.name,
            segments=SegmentPool() if self.shared_memory else None,
        )
        outcome = supervisor.run()
        return _merge_results(
            self.lifeguard_cls.name, self.num_chunks, outcome.results,
            workers=max(1, len(tasks)), elapsed=time.perf_counter() - start,
            outcome=outcome,
        )


class MultiTraceReplay:
    """Sharded replay over a *set* of traces (one per application core).

    The multi-core platform captures each application core's log channel as
    its own chunked trace file.  This replays every file of such a set
    through private lifeguard instances, reusing the per-file chunk index
    for work splitting exactly like :class:`ParallelReplay`: each file's
    chunk range is cut into contiguous spans, every ``(file, span)`` work
    item is an independent decode (chunk boundaries are codec reset
    points), and the per-item outcomes are summed field-wise with reports
    merged deterministically.  ``run()`` and ``run_sequential()`` therefore
    produce identical results regardless of worker count.
    """

    def __init__(
        self,
        trace_paths: Sequence[str],
        lifeguard: LifeguardSpec,
        config: Optional[SystemConfig] = None,
        workers: Optional[int] = None,
        collect_timing: bool = False,
        quarantine: str = "strict",
        policy: Optional[SupervisorPolicy] = None,
        fault_plan=None,
        shared_memory: Optional[bool] = None,
    ) -> None:
        if not trace_paths:
            raise ValueError("at least one trace path is required")
        self.trace_paths = [str(path) for path in trace_paths]
        self.lifeguard_cls = _resolve_lifeguard(lifeguard)
        self.config = config
        self.workers = _resolve_workers(workers)
        self.collect_timing = collect_timing
        self.quarantine = _validate_quarantine(quarantine)
        self.policy = policy
        self.fault_plan = fault_plan
        self.shared_memory = (
            shared_memory_available() if shared_memory is None else bool(shared_memory)
        )
        self.chunks_per_trace: List[int] = []
        self._chunk_records: List[Tuple[int, ...]] = []
        for path in self.trace_paths:
            with TraceReader(path) as reader:
                self.chunks_per_trace.append(reader.num_chunks)
                self._chunk_records.append(reader.chunk_record_counts())
        self.num_chunks = sum(self.chunks_per_trace)

    def _work_tasks(self, collect_timing: bool = False) -> List[ShardTask]:
        """One :class:`ShardTask` per (file, contiguous span)."""
        tasks = []
        for path, num_chunks, records in zip(
            self.trace_paths, self.chunks_per_trace, self._chunk_records
        ):
            for span in _contiguous_spans(num_chunks, self.workers):
                tasks.append(ShardTask(
                    trace_path=path,
                    lifeguard=self.lifeguard_cls.name,
                    config=self.config,
                    chunks=tuple(span),
                    chunk_records=tuple(records[i] for i in span),
                    collect_timing=collect_timing,
                    quarantine=self.quarantine,
                    fault_plan=self.fault_plan,
                ))
        return tasks

    def _collect_timing(self) -> bool:
        """Timing is on when requested explicitly or telemetry is enabled."""
        return self.collect_timing or OBS.enabled

    def run_sequential(self) -> ReplayResult:
        """Replay every work item in-process (reference for the parallel path)."""
        start = time.perf_counter()
        results = [_replay_shard(task) for task in self._work_tasks(self._collect_timing())]
        return _merge_results(
            self.lifeguard_cls.name, self.num_chunks, results,
            workers=1, elapsed=time.perf_counter() - start,
        )

    def run(self) -> ReplayResult:
        """Replay work items across supervised worker processes and merge."""
        tasks = self._work_tasks(self._collect_timing())
        supervise_anyway = self.policy is not None or self.fault_plan is not None
        if (len(tasks) <= 1 or self.workers <= 1) and not supervise_anyway:
            return self.run_sequential()
        start = time.perf_counter()
        processes = min(self.workers, max(1, len(tasks)))
        supervisor = ShardSupervisor(
            tasks,
            _replay_shard,
            policy=self.policy,
            max_parallel=processes,
            lifeguard=self.lifeguard_cls.name,
            segments=SegmentPool() if self.shared_memory else None,
        )
        outcome = supervisor.run()
        return _merge_results(
            self.lifeguard_cls.name, self.num_chunks, outcome.results,
            workers=processes, elapsed=time.perf_counter() - start,
            outcome=outcome,
        )
