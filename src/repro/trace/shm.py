"""Shared-memory column transport for parallel replay.

The original sharded replay shipped nothing to the workers (each re-read
and re-decoded its chunk span from the trace file) and shipped full
pickled results back -- and the committed multicore benchmarks showed the
pickle/pipe costs *inverting* the scaling curve.  This module is the fix's
transport layer: the parent pre-decodes each shard's chunks into packed
:class:`~repro.trace.codec.RecordColumns` buffers laid out inside one
named ``multiprocessing.shared_memory`` segment per shard, and the worker
attaches and reconstructs zero-copy column views instead of decoding.

Only small picklable *descriptors* cross the process boundary:

* :class:`PackedChunk` -- one chunk's record count plus the
  :class:`~repro.trace.codec.ColumnLayout` and base offset of its packed
  columns within the segment;
* :class:`ShardSegment` -- the segment name, its size and the packed
  chunks it holds (rides on ``ShardTask.segment``).

Chunks that cannot be packed (damaged bytes, IO errors, values outside
int64) are simply *absent* from the segment: the worker falls back to the
classic read-from-file path for exactly those chunks, so strict/degrade
quarantine semantics are bit-identical with and without shared memory.

Segment lifecycle is owned by the parent's :class:`SegmentPool` (driven by
the shard supervisor): a segment is created when its shard first launches,
survives retries, bisection probes and final re-runs of that shard, and is
unlinked when the shard settles -- with :meth:`SegmentPool.release_all` as
the backstop on every supervisor exit path (``ReplayError``,
``KeyboardInterrupt``, normal return).

Resource-tracker note: on the Pythons this repo targets (< 3.13),
*attaching* to an existing segment also registers it with
``multiprocessing.resource_tracker``.  Under the ``fork`` start method
(Linux default, what the shard supervisor uses) every worker shares the
parent's tracker process and its per-name cache is a set, so attach-side
registrations collapse into the creator's and the single ``unlink`` by the
owning :class:`SegmentPool` retires the name exactly once -- no duplicate
unlinks, no shutdown warnings.  Workers must therefore *not* unregister
after attaching: doing so would cancel the creator's registration in the
shared tracker and forfeit crash cleanup.  (Spawn-based attachers would
need per-process unregistration; this repo does not use spawn.)
"""

from __future__ import annotations

import os
import secrets
import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.trace.codec import ColumnLayout, TraceCodecError
from repro.trace.tracefile import TraceFormatError, TraceReader

try:  # pragma: no cover - exercised on every supported platform in CI
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platforms without shm support
    _shared_memory = None

#: Prefix of every segment this module creates.  The test-suite /dev/shm
#: leak gate and the CI leak check key on it, so keep it stable.
SEGMENT_PREFIX = "repro_shm_"

#: Errors that make one chunk unpackable without failing the pre-decode:
#: damaged bytes and environmental IO keep their in-worker semantics, and
#: ``ValueError`` is ``to_buffers`` signalling a value outside int64.
_UNPACKABLE_ERRORS = (TraceFormatError, TraceCodecError, OSError, ValueError)


def shared_memory_available() -> bool:
    """Whether the platform offers ``multiprocessing.shared_memory``."""
    return _shared_memory is not None


def _segment_name() -> str:
    """A fresh collision-resistant segment name carrying the leak-gate prefix."""
    return f"{SEGMENT_PREFIX}{os.getpid()}_{secrets.token_hex(4)}"


def attach_segment(name: str):
    """Attach to an existing segment without adopting its ownership.

    The attach-side resource-tracker registration is deliberately left in
    place: under ``fork`` it is an idempotent duplicate of the creator's
    (see the module docstring), and removing it would cancel crash
    cleanup.  Raises ``FileNotFoundError``/``OSError`` when the segment is
    gone -- callers fall back to reading the trace file.
    """
    return _shared_memory.SharedMemory(name=name)


@dataclass(frozen=True)
class PackedChunk:
    """Descriptor of one chunk's packed columns inside a segment."""

    chunk: int
    records: int
    offset: int
    layout: ColumnLayout


@dataclass(frozen=True)
class ShardSegment:
    """Picklable descriptor of one shard's shared-memory segment.

    ``chunks`` lists only the chunks that packed cleanly; a worker reads
    any other chunk of its span from the trace file as before.
    ``predecode_s`` is the parent-side wall time spent decoding and
    packing, surfaced in the worker timing breakdown so the decode cost
    does not silently vanish from the books when it moves to the parent.
    """

    name: str
    size: int
    chunks: Tuple[PackedChunk, ...]
    predecode_s: float = 0.0

    def chunk_map(self) -> Dict[int, PackedChunk]:
        """Chunk index -> packed descriptor, for the worker's span loop."""
        return {packed.chunk: packed for packed in self.chunks}


class SegmentPool:
    """Parent-side pre-decode stage plus segment lifecycle owner.

    One pool serves one supervised replay run.  ``prepare(task)`` packs a
    shard task's chunks into a fresh segment and returns the task with its
    ``segment`` descriptor set (or the task unchanged when nothing could
    be packed); ``release(task)`` unlinks a settled shard's segment; and
    ``release_all()`` is the run-scoped backstop that must be reached on
    every exit path.

    The pool never raises out of ``prepare``: any failure (no shm support,
    segment creation error, damaged chunk) degrades to the classic
    read-in-worker path, recorded in :meth:`counters`.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled and shared_memory_available()
        self._segments: Dict[str, object] = {}
        self._readers: Dict[str, TraceReader] = {}
        self._counters: Dict[str, int] = {}

    # ----------------------------------------------------------------- helpers

    def _bump(self, name: str, value: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + value

    def counters(self) -> Dict[str, int]:
        """Lifetime pool counters (merged into the supervision outcome)."""
        return dict(self._counters)

    def _reader(self, trace_path: str) -> TraceReader:
        reader = self._readers.get(trace_path)
        if reader is None:
            reader = TraceReader(trace_path)
            self._readers[trace_path] = reader
        return reader

    # ---------------------------------------------------------------- prepare

    def prepare(self, task):
        """Pack ``task``'s chunks into a segment; returns the prepared task.

        Idempotent: a task that already carries a segment (shard retries,
        bisection probes and finals derived from it) is returned as-is, so
        one shard's attempts all share one segment.
        """
        if not self.enabled or getattr(task, "segment", None) is not None:
            return task
        start = time.perf_counter()
        packed: List[Tuple[int, int, ColumnLayout, List[object]]] = []
        offset = 0
        try:
            reader = self._reader(task.trace_path)
            for position, index in enumerate(task.chunks):
                if index in task.skip:
                    continue
                try:
                    columns = reader.read_chunk_columns(index)
                    layout, parts = columns.to_buffers()
                except _UNPACKABLE_ERRORS:
                    # Leave the chunk to the worker: it reproduces the
                    # exact strict-raise / degrade-quarantine behaviour.
                    self._bump("shm_fallback_chunks")
                    continue
                packed.append((index, task.chunk_records[position], layout, parts))
                offset = ((offset + 7) & ~7) + layout.nbytes
        except OSError:
            self._bump("shm_fallback_chunks", len(task.chunks))
            packed = []
        if not packed:
            return task
        try:
            segment = _shared_memory.SharedMemory(
                name=_segment_name(), create=True, size=max(1, offset)
            )
        except OSError:
            self._bump("shm_create_errors")
            return task
        chunk_refs: List[PackedChunk] = []
        base = 0
        view = segment.buf
        for index, records, layout, parts in packed:
            base = (base + 7) & ~7
            for (name, typecode, field_offset, nbytes), part in zip(layout.fields, parts):
                if not nbytes:
                    continue
                target = view[base + field_offset:base + field_offset + nbytes]
                target[:] = memoryview(part).cast("B") if typecode == "q" else part
                target.release()
            chunk_refs.append(PackedChunk(
                chunk=index, records=records, offset=base, layout=layout,
            ))
            base += layout.nbytes
        self._segments[segment.name] = segment
        self._bump("shm_segments")
        self._bump("shm_bytes", segment.size)
        self._bump("shm_chunks", len(chunk_refs))
        descriptor = ShardSegment(
            name=segment.name,
            size=segment.size,
            chunks=tuple(chunk_refs),
            predecode_s=time.perf_counter() - start,
        )
        return replace(task, segment=descriptor)

    # ---------------------------------------------------------------- release

    def release(self, task) -> None:
        """Unlink the segment of a settled shard task (idempotent)."""
        descriptor = getattr(task, "segment", None)
        if descriptor is None:
            return
        self._release_name(descriptor.name)

    def _release_name(self, name: str) -> None:
        segment = self._segments.pop(name, None)
        if segment is None:
            return
        try:
            segment.close()
        except BufferError:  # pragma: no cover - no views escape the pool
            pass
        try:
            segment.unlink()
        except FileNotFoundError:
            pass

    def release_all(self) -> None:
        """Unlink every live segment and close every reader (backstop).

        Safe to call repeatedly and from ``finally`` blocks; after it
        returns no segment created by this pool survives in /dev/shm.
        """
        for name in list(self._segments):
            self._release_name(name)
        for reader in self._readers.values():
            try:
                reader.close()
            except Exception:
                pass
        self._readers.clear()
