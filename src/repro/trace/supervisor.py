"""Shard supervision: run replay shard tasks in worker processes that are
allowed to crash, hang or report corruption -- and survive all three.

``multiprocessing.Pool.map`` offers none of the control fault tolerance
needs: a SIGKILL'd worker poisons the whole pool, a hung worker blocks
``map`` forever, and there is no per-shard retry.  The
:class:`ShardSupervisor` replaces it with one :class:`multiprocessing`
process *per shard attempt*, each reporting through its own pipe, under a
supervision loop that provides:

* **per-attempt timeouts** -- a worker that exceeds
  :attr:`SupervisorPolicy.timeout_seconds` is terminated and the shard is
  retried;
* **bounded retry with exponential backoff** -- crashes (nonzero exit
  without a result), timeouts and IO errors (``OSError`` from the reader)
  are retried up to :attr:`SupervisorPolicy.max_attempts` times, waiting
  ``backoff_seconds * backoff_multiplier**(attempt-1)`` between attempts;
* **span bisection** -- a multi-chunk shard that keeps dying is split into
  probe halves (results discarded) to isolate the poison chunk(s); the
  full span is then re-run as *one* shard with the poison chunks skipped,
  so the surviving chunks still share a single lifeguard exactly like an
  in-worker quarantine would;
* **graceful fallback** -- a single-chunk shard that exhausts its retries
  is replayed in-process as a last resort (disable via
  :attr:`SupervisorPolicy.in_process_fallback` when hunting poison chunks
  that would kill the parent too);
* **structured failure records** -- every attempt that dies produces a
  :class:`ShardFailure`; unrecoverable shards either raise
  :class:`ReplayError` (``strict``) or quarantine their chunks with exact
  record accounting (``degrade``).

Deterministic worker *exceptions* are not retried: a
:class:`~repro.trace.tracefile.TraceFormatError` escaping a strict-mode
worker will fail identically on every attempt, so the supervisor raises
:class:`ReplayError` immediately, naming the shard.  Only ``OSError``
(environmental IO) is treated as retryable among exceptions.

The supervisor is generic over the task type: tasks must be frozen
dataclasses exposing ``trace_path``, ``chunks``, ``chunk_records``,
``skip`` and ``quarantine`` (see ``repro.trace.replay.ShardTask``), and
``runner(task)`` must be a picklable module-level callable.

When constructed with a ``segments`` pool
(:class:`repro.trace.shm.SegmentPool`) the supervisor also owns the
shared-memory lifecycle: a shard's chunks are pre-decoded into a named
segment just before its first launch, every attempt derived from that
shard (retries, bisection probes, skip-set finals) reuses the same
segment, the segment is unlinked when the shard settles, and
``release_all()`` runs on every exit path of :meth:`ShardSupervisor.run`
-- so neither a ``ReplayError`` nor a ``KeyboardInterrupt`` can leak a
segment into ``/dev/shm``.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import random
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Quarantine policies: ``strict`` raises on any damaged/poison chunk,
#: ``degrade`` skips it and reports exact skipped-chunk/record accounting.
QUARANTINE_POLICIES = ("strict", "degrade")


class ReplayError(RuntimeError):
    """A replay shard failed unrecoverably.

    Carries the failing shard's trace path, chunk span and lifeguard so
    callers (and operators reading logs) know exactly what was lost.
    """

    def __init__(
        self,
        message: str,
        trace_path: Optional[str] = None,
        chunks: Sequence[int] = (),
        lifeguard: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.trace_path = trace_path
        self.chunks = tuple(chunks)
        self.lifeguard = lifeguard


@dataclass(frozen=True)
class SupervisorPolicy:
    """Knobs of the shard supervision loop."""

    #: Wall-clock budget per shard attempt; ``None`` disables timeouts.
    timeout_seconds: Optional[float] = 300.0
    #: Attempts per shard (first run + retries) before bisection/fallback.
    max_attempts: int = 3
    #: Base delay before the first retry of a shard.
    backoff_seconds: float = 0.05
    #: Multiplier applied to the backoff for each further retry.
    backoff_multiplier: float = 2.0
    #: Split repeatedly-failing multi-chunk shards to isolate poison chunks.
    bisect: bool = True
    #: Replay a single-chunk shard in-process once its retries are spent.
    #: Turn off when a poison chunk could take the parent down with it.
    in_process_fallback: bool = True
    #: Supervision loop poll interval.
    poll_seconds: float = 0.02
    #: Fractional jitter applied to each backoff delay, spreading the
    #: retries of simultaneously-failing shards so they do not stampede a
    #: shared resource (disk, segment pool, gateway worker slot) in
    #: lockstep.  ``0.25`` means each delay lands uniformly in
    #: ``[0.75x, 1.25x]`` of the exponential schedule.  The jitter is
    #: *seeded*: a fixed :attr:`jitter_seed` plus the caller's ``salt``
    #: (shard identity) and the attempt number fully determine every
    #: delay, so retry schedules are reproducible run after run.
    backoff_jitter: float = 0.0
    #: Seed anchoring the deterministic jitter sequence.
    jitter_seed: int = 0
    #: ``multiprocessing`` start method for worker processes (``None`` =
    #: platform default).  Callers that spawn replays from *threaded*
    #: parents (the monitoring gateway's executor) should use
    #: ``"forkserver"``: plain ``fork`` from a multi-threaded process can
    #: clone held locks into the child and deadlock it, which then costs a
    #: full attempt timeout to recover.
    start_method: Optional[str] = None

    def attempts_for(self, phase: str) -> int:
        """Probes get one fewer attempt: they exist to fail fast."""
        if phase == "probe":
            return max(1, self.max_attempts - 1)
        return self.max_attempts

    def backoff_for(self, attempt: int, salt: int = 0) -> float:
        """Delay before retry number ``attempt`` (1-based) of shard ``salt``.

        ``salt`` distinguishes shards retrying at the same attempt number:
        with jitter enabled, distinct salts draw distinct (but seeded,
        hence reproducible) delays from the same exponential base.
        """
        delay = self.backoff_seconds * (self.backoff_multiplier ** max(0, attempt - 1))
        if self.backoff_jitter:
            if not 0.0 < self.backoff_jitter <= 1.0:
                raise ValueError(
                    f"backoff_jitter must be in (0, 1], got {self.backoff_jitter}"
                )
            rng = random.Random(f"{self.jitter_seed}:{salt}:{attempt}")
            delay *= 1.0 + self.backoff_jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, delay)


@dataclass(frozen=True)
class ShardFailure:
    """One failed shard attempt (picklable, for ReplayResult.failures)."""

    trace_path: str
    chunks: Tuple[int, ...]
    attempt: int
    kind: str  # "timeout" | "crash" | "error"
    phase: str  # "work" | "probe" | "final" | "fallback"
    detail: str
    elapsed: float


@dataclass(frozen=True)
class QuarantinedChunk:
    """A chunk excluded from replay, with exact record accounting."""

    trace_path: str
    chunk: int
    records: int
    reason: str  # "corrupt" | "poison" | "exhausted" | "isolated"
    detail: str = ""


@dataclass
class SupervisorOutcome:
    """Everything a supervision run produced."""

    results: List[object] = field(default_factory=list)
    failures: List[ShardFailure] = field(default_factory=list)
    #: supervisor-level quarantines (exhausted spans); worker-level
    #: quarantines ride inside the shard results themselves
    quarantined: List[QuarantinedChunk] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)

    def bump(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value


def _child_main(runner, task, conn) -> None:
    """Worker process entry: run the task, report through the pipe.

    A worker killed by SIGKILL / ``os._exit`` sends nothing -- the
    supervisor reads that from the exit code.  Exceptions are reported as
    ``("error", type_name, message, retryable)``; only ``OSError`` is
    environmental and therefore retryable.
    """
    try:
        result = runner(task)
    except BaseException as exc:  # noqa: BLE001 -- everything must cross the pipe
        try:
            conn.send(("error", type(exc).__name__, str(exc), isinstance(exc, OSError)))
        except Exception:
            pass
        return
    try:
        conn.send(("ok", result))
    except Exception:
        pass
    finally:
        conn.close()


class _Pending:
    """A shard task queued for (re-)execution."""

    __slots__ = ("task", "phase", "attempts", "ready_at", "group", "fallback_tried")

    def __init__(self, task, phase: str = "work", group=None) -> None:
        self.task = task
        self.phase = phase
        self.attempts = 0
        self.ready_at = 0.0
        self.group = group
        self.fallback_tried = False


class _Running:
    """A shard attempt currently executing in a worker process."""

    __slots__ = ("pending", "process", "conn", "started", "deadline")

    def __init__(self, pending, process, conn, started, deadline) -> None:
        self.pending = pending
        self.process = process
        self.conn = conn
        self.started = started
        self.deadline = deadline


class _BisectGroup:
    """Bookkeeping for one span being bisected to isolate poison chunks."""

    __slots__ = ("base", "outstanding", "poison")

    def __init__(self, base: _Pending) -> None:
        self.base = base
        self.outstanding = 0
        self.poison: List[Tuple[int, int]] = []  # (chunk, records)


def _shard_salt(task) -> int:
    """Deterministic per-shard jitter salt (stable across processes/runs).

    ``hash()`` is randomized per interpreter, so the salt is a CRC32 of
    the shard's identity instead -- the same shard always draws the same
    jittered backoff schedule.
    """
    chunks = getattr(task, "chunks", ())
    first = chunks[0] if chunks else -1
    identity = f"{getattr(task, 'trace_path', '')}:{first}:{len(chunks)}"
    return zlib.crc32(identity.encode())


def _effective_chunks(task) -> List[Tuple[int, int]]:
    """(chunk, records) pairs of a task minus its skip set."""
    return [
        (chunk, records)
        for chunk, records in zip(task.chunks, task.chunk_records)
        if chunk not in task.skip
    ]


class ShardSupervisor:
    """Run shard tasks across supervised worker processes.

    ``runner`` is executed in a child process per attempt; results are
    collected in completion order (merging is order-insensitive).  The
    supervisor guarantees no child process outlives :meth:`run` -- on any
    exit path (success, :class:`ReplayError`, ``KeyboardInterrupt``) every
    worker is terminated and joined.
    """

    def __init__(
        self,
        tasks: Sequence[object],
        runner: Callable[[object], object],
        policy: Optional[SupervisorPolicy] = None,
        max_parallel: int = 1,
        lifeguard: str = "",
        segments=None,
    ) -> None:
        self.tasks = list(tasks)
        self.runner = runner
        self.policy = policy or SupervisorPolicy()
        self.max_parallel = max(1, max_parallel)
        self.lifeguard = lifeguard
        #: Optional :class:`repro.trace.shm.SegmentPool`.  When set, each
        #: shard's chunks are pre-decoded into a shared-memory segment at
        #: first launch; retries, bisection probes and finals derived from
        #: the shard reuse the same segment, and the supervisor unlinks it
        #: when the shard settles -- with ``release_all`` as the backstop
        #: on every exit path of :meth:`run`.
        self.segments = segments
        self._mp = (
            multiprocessing.get_context(self.policy.start_method)
            if self.policy.start_method
            else multiprocessing
        )
        self._queue: List[_Pending] = []
        self._running: List[_Running] = []
        self._outcome = SupervisorOutcome()

    # ------------------------------------------------------------------ driving

    def run(self) -> SupervisorOutcome:
        """Execute every task; returns the outcome or raises ReplayError."""
        self._queue = [_Pending(task) for task in self.tasks]
        self._running = []
        self._outcome = SupervisorOutcome()
        try:
            while self._queue or self._running:
                self._launch_ready()
                if not self._running:
                    # Everything queued is backing off; sleep to the nearest.
                    now = time.monotonic()
                    wake = min(p.ready_at for p in self._queue)
                    time.sleep(min(max(wake - now, 0.0), 0.25) or self.policy.poll_seconds)
                    continue
                progressed = self._poll_running()
                if not progressed:
                    time.sleep(self.policy.poll_seconds)
        finally:
            # Every exit path -- success, ReplayError, KeyboardInterrupt --
            # must leave no child process and no shared-memory segment.
            self._terminate_all()
            if self.segments is not None:
                self.segments.release_all()
                for name, value in self.segments.counters().items():
                    if value:
                        self._outcome.counters[name] = value
        return self._outcome

    def _launch_ready(self) -> None:
        now = time.monotonic()
        while len(self._running) < self.max_parallel:
            index = next(
                (i for i, p in enumerate(self._queue) if p.ready_at <= now), None
            )
            if index is None:
                return
            pending = self._queue.pop(index)
            pending.task = self._prepare_task(pending.task)
            parent_conn, child_conn = self._mp.Pipe(duplex=False)
            process = self._mp.Process(
                target=_child_main,
                args=(self.runner, pending.task, child_conn),
                daemon=True,
            )
            # The launch stamp is taken immediately before the process
            # starts so a result's (received - launched) interval measures
            # exactly spawn + task hand-off + compute + result return.
            started = time.monotonic()
            process.start()
            child_conn.close()
            deadline = (
                None
                if self.policy.timeout_seconds is None
                else started + self.policy.timeout_seconds
            )
            if pending.phase == "probe":
                self._outcome.bump("bisect_probes")
            self._running.append(_Running(pending, process, parent_conn, started, deadline))

    def _poll_running(self) -> bool:
        progressed = False
        now = time.monotonic()
        for running in list(self._running):
            message = None
            if running.conn.poll(0):
                try:
                    message = running.conn.recv()
                except EOFError:
                    message = None
            if message is not None:
                received = time.monotonic()
                self._reap(running)
                progressed = True
                if message[0] == "ok":
                    result = message[1]
                    timing = getattr(result, "timing", None)
                    if timing is not None:
                        # Per-shard hand-off/arrival stamps: what
                        # _worker_timings turns into this shard's ipc_s.
                        timing["mono_launched"] = running.started
                        timing["mono_received"] = received
                    self._on_success(running.pending, result)
                else:
                    _tag, type_name, text, retryable = message
                    self._on_failure(
                        running.pending, "error", f"{type_name}: {text}",
                        now - running.started, retryable=retryable,
                    )
            elif not running.process.is_alive():
                self._reap(running)
                progressed = True
                self._on_failure(
                    running.pending, "crash",
                    f"worker exited with code {running.process.exitcode} "
                    "before reporting a result",
                    now - running.started,
                )
            elif running.deadline is not None and now >= running.deadline:
                self._kill(running)
                self._reap(running, join=False)
                progressed = True
                self._on_failure(
                    running.pending, "timeout",
                    f"worker exceeded the {self.policy.timeout_seconds:.3g}s "
                    "attempt timeout and was terminated",
                    now - running.started,
                )
        return progressed

    def _reap(self, running: _Running, join: bool = True) -> None:
        self._running.remove(running)
        if join:
            running.process.join(timeout=5)
            if running.process.is_alive():
                self._kill(running)
        running.conn.close()

    def _kill(self, running: _Running) -> None:
        process = running.process
        if process.is_alive():
            process.terminate()
            process.join(timeout=0.5)
        if process.is_alive():
            process.kill()
            process.join(timeout=5)

    def _terminate_all(self) -> None:
        for running in list(self._running):
            self._kill(running)
            running.conn.close()
        self._running = []

    # ---------------------------------------------------------------- segments

    def _prepare_task(self, task):
        """Pre-decode a shard's chunks into a shared-memory segment.

        Idempotent across a shard's retries/probes/finals (the pool keys on
        the task's existing descriptor) and never fails the launch: any
        pre-decode error degrades to the classic decode-in-worker path.
        """
        if self.segments is None:
            return task
        try:
            return self.segments.prepare(task)
        except Exception:
            self._outcome.bump("shm_prepare_errors")
            return task

    def _release_segment(self, task) -> None:
        """Unlink a settled shard's segment (no-op without a pool)."""
        if self.segments is not None:
            self.segments.release(task)

    # ------------------------------------------------------------------ events

    def _on_success(self, pending: _Pending, result) -> None:
        if pending.phase == "probe":
            self._probe_settled(pending.group)
        else:
            self._outcome.results.append(result)
            self._release_segment(pending.task)

    def _on_failure(
        self,
        pending: _Pending,
        kind: str,
        detail: str,
        elapsed: float,
        retryable: bool = True,
    ) -> None:
        task = pending.task
        pending.attempts += 1
        self._outcome.failures.append(
            ShardFailure(
                trace_path=task.trace_path,
                chunks=tuple(task.chunks),
                attempt=pending.attempts,
                kind=kind,
                phase=pending.phase,
                detail=detail,
                elapsed=round(elapsed, 6),
            )
        )
        self._outcome.bump(
            {"timeout": "worker_timeouts", "crash": "worker_crashes"}.get(
                kind, "worker_errors"
            )
        )
        if not retryable:
            # Deterministic worker exception: retrying cannot help.
            raise ReplayError(
                f"shard chunks {list(task.chunks)} of {task.trace_path} "
                f"failed: {detail}",
                trace_path=task.trace_path,
                chunks=task.chunks,
                lifeguard=self.lifeguard,
            )
        if pending.attempts < self.policy.attempts_for(pending.phase):
            self._outcome.bump("worker_retries")
            pending.ready_at = time.monotonic() + self.policy.backoff_for(
                pending.attempts, salt=_shard_salt(task)
            )
            self._queue.append(pending)
            return
        self._exhausted(pending, kind, detail)

    # -------------------------------------------------------------- exhaustion

    def _exhausted(self, pending: _Pending, kind: str, detail: str) -> None:
        effective = _effective_chunks(pending.task)
        if pending.phase == "probe":
            group = pending.group
            if len(effective) > 1:
                self._enqueue_probe_halves(group, effective)
            else:
                group.poison.extend(effective)
            self._probe_settled(group)
            return
        if pending.phase == "work" and self.policy.bisect and len(effective) > 1:
            self._outcome.bump("bisections")
            group = _BisectGroup(pending)
            self._enqueue_probe_halves(group, effective)
            return
        self._give_up(pending, kind, detail)

    def _enqueue_probe_halves(
        self, group: _BisectGroup, effective: List[Tuple[int, int]]
    ) -> None:
        middle = len(effective) // 2
        for half in (effective[:middle], effective[middle:]):
            probe_task = dataclasses.replace(
                group.base.task,
                chunks=tuple(chunk for chunk, _records in half),
                chunk_records=tuple(records for _chunk, records in half),
                skip=frozenset(),
                collect_timing=False,
            )
            group.outstanding += 1
            self._queue.append(_Pending(probe_task, phase="probe", group=group))

    def _probe_settled(self, group: _BisectGroup) -> None:
        group.outstanding -= 1
        if group.outstanding > 0:
            return
        base = group.base
        task = base.task
        if not group.poison:
            # Every probe survived individually: the span failure was flaky
            # (or a resource interaction).  One final full-span round.
            final = _Pending(task, phase="final")
            self._queue.append(final)
            return
        poison_chunks = sorted(chunk for chunk, _records in group.poison)
        if task.quarantine != "degrade":
            raise ReplayError(
                f"poison chunk(s) {poison_chunks} of {task.trace_path} isolated "
                f"by span bisection (worker died on every attempt); re-run with "
                f"quarantine='degrade' to skip them",
                trace_path=task.trace_path,
                chunks=poison_chunks,
                lifeguard=self.lifeguard,
            )
        # Re-run the *full* span as one shard with the poison chunks
        # skipped: the worker quarantines the skips itself, and the
        # surviving chunks share a single lifeguard -- the same state
        # grouping an in-worker corruption quarantine produces.
        final_task = dataclasses.replace(
            task, skip=task.skip | frozenset(poison_chunks)
        )
        self._queue.append(_Pending(final_task, phase="final"))

    def _give_up(self, pending: _Pending, kind: str, detail: str) -> None:
        task = pending.task
        if self.policy.in_process_fallback and not pending.fallback_tried:
            pending.fallback_tried = True
            self._outcome.bump("fallbacks_inprocess")
            started = time.monotonic()
            try:
                self._outcome.results.append(self.runner(task))
                self._release_segment(task)
                return
            except OSError as exc:
                self._outcome.failures.append(
                    ShardFailure(
                        trace_path=task.trace_path,
                        chunks=tuple(task.chunks),
                        attempt=pending.attempts + 1,
                        kind="error",
                        phase="fallback",
                        detail=f"{type(exc).__name__}: {exc}",
                        elapsed=round(time.monotonic() - started, 6),
                    )
                )
                detail = f"in-process fallback also failed: {exc}"
            except Exception as exc:
                raise ReplayError(
                    f"shard chunks {list(task.chunks)} of {task.trace_path} "
                    f"failed in-process after worker retries: {exc}",
                    trace_path=task.trace_path,
                    chunks=task.chunks,
                    lifeguard=self.lifeguard,
                ) from exc
        if task.quarantine == "degrade":
            for chunk, records in _effective_chunks(task):
                self._outcome.quarantined.append(
                    QuarantinedChunk(
                        trace_path=task.trace_path,
                        chunk=chunk,
                        records=records,
                        reason="exhausted",
                        detail=f"{kind} after {pending.attempts} attempt(s): {detail}",
                    )
                )
            self._release_segment(task)
            return
        raise ReplayError(
            f"shard chunks {list(task.chunks)} of {task.trace_path} failed "
            f"after {pending.attempts} attempt(s) ({kind}: {detail})",
            trace_path=task.trace_path,
            chunks=task.chunks,
            lifeguard=self.lifeguard,
        )
