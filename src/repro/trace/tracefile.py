"""Chunked trace files: capture a log once, re-analyse it many times.

File layout (all integers little-endian)::

    header   : magic "LBATRC01" | u16 version | u16 flags | u32 chunk_bytes
               | u64 index_offset (patched on close)
    chunks   : concatenated chunk payloads (zlib-compressed when flag set)
    index    : magic "INDX" | u32 num_chunks
               | per chunk: u64 offset | u32 stored_len | u32 raw_len | u32 records
                            | u32 crc32 (version >= 2)
               | u64 total_records | u64 instructions | u64 annotations | u64 raw_bytes

Each chunk is an independently decodable unit: the record codec's delta
chains are reset at every chunk boundary, so a reader (or a parallel replay
worker) can seek straight to any chunk via the index without touching the
bytes before it.  Chunks are closed when their raw payload reaches the
configured ``chunk_bytes`` target, so all chunks of a trace have roughly
the same size (the last one may be short).

Version 2 adds a CRC32 of each chunk's *stored* bytes to the index entry,
verified on every chunk read, so payload corruption is detected before the
decompressor or codec ever see the damage (and detected at all for
uncompressed traces, whose payloads would otherwise often still "parse").
Version 1 traces remain readable; their chunks simply carry no checksum.
The index totals are cross-checked against the per-chunk entries on open,
so a damaged footer can never silently misreport the record population.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple, Union

from repro.core.events import AnnotationRecord, InstructionRecord
from repro.obs.runtime import OBS
from repro.trace.codec import (
    RecordColumns,
    RecordEncoder,
    TraceCodecError,
    decode_record_columns,
    decode_records,
)

Record = Union[InstructionRecord, AnnotationRecord]

_MAGIC = b"LBATRC01"
_INDEX_MAGIC = b"INDX"
_VERSION = 2
#: Oldest trace version this reader still understands (v1 has no CRCs).
_MIN_VERSION = 1
_FLAG_ZLIB = 1 << 0

_HEADER = struct.Struct("<8sHHIQ")
_INDEX_HEADER = struct.Struct("<4sI")
_INDEX_ENTRY_V1 = struct.Struct("<QIII")
_INDEX_ENTRY = struct.Struct("<QIIII")
_INDEX_TOTALS = struct.Struct("<QQQQ")

#: Default raw payload size at which a chunk is closed.
DEFAULT_CHUNK_BYTES = 64 * 1024


class TraceFormatError(ValueError):
    """Raised when a trace file is malformed, truncated or corrupt."""


@dataclass(frozen=True)
class ChunkInfo:
    """Index entry describing one chunk."""

    index: int
    offset: int
    stored_len: int
    raw_len: int
    records: int
    #: CRC32 of the stored (possibly compressed) payload; ``None`` for
    #: version-1 traces, which predate per-chunk checksums.
    crc: Optional[int] = None


@dataclass
class TraceStats:
    """Aggregate statistics of a captured trace."""

    records: int = 0
    instructions: int = 0
    annotations: int = 0
    raw_bytes: int = 0
    stored_bytes: int = 0
    chunks: int = 0

    @property
    def compression_ratio(self) -> float:
        """Raw codec bytes over stored (possibly zlib-compressed) bytes."""
        if not self.stored_bytes:
            return 1.0
        return self.raw_bytes / self.stored_bytes

    @property
    def bytes_per_record(self) -> float:
        """Average stored bytes per record."""
        if not self.records:
            return 0.0
        return self.stored_bytes / self.records


class TraceWriter:
    """Streams records into a chunked trace file.

    Usable as a context manager; :meth:`close` finalizes the chunk in
    flight, appends the index and patches the header's index offset.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        compress: bool = True,
    ) -> None:
        if chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        self.path = os.fspath(path)
        self.chunk_bytes = chunk_bytes
        self.compress = compress
        self.stats = TraceStats()
        self._encoder = RecordEncoder()
        self._chunk = bytearray()
        self._chunk_records = 0
        self._chunks: List[ChunkInfo] = []
        self._file = open(self.path, "wb")
        self._closed = False
        flags = _FLAG_ZLIB if compress else 0
        self._file.write(_HEADER.pack(_MAGIC, _VERSION, flags, chunk_bytes, 0))

    # ------------------------------------------------------------------ writing

    def append(self, record: Record) -> int:
        """Serialize one record into the current chunk; returns its raw bytes."""
        if self._closed:
            raise ValueError("trace writer is closed")
        # Zero-copy append: the encoder writes straight into the chunk
        # buffer instead of materialising a per-record ``bytes`` object.
        encoded_len = self._encoder.encode_into(self._chunk, record)
        self._chunk_records += 1
        self.stats.records += 1
        if isinstance(record, AnnotationRecord):
            self.stats.annotations += 1
        else:
            self.stats.instructions += 1
        self.stats.raw_bytes += encoded_len
        if len(self._chunk) >= self.chunk_bytes:
            self._flush_chunk()
        return encoded_len

    def extend(self, records) -> None:
        """Append a record sequence."""
        for record in records:
            self.append(record)

    def _flush_chunk(self) -> None:
        if not self._chunk_records:
            return
        # Compress (or write) straight from the chunk bytearray -- no
        # intermediate ``bytes`` copy of the raw payload.
        raw_len = len(self._chunk)
        if OBS.enabled:
            start = time.perf_counter()
            stored = zlib.compress(self._chunk, 6) if self.compress else self._chunk
            if OBS.tracer is not None:
                OBS.tracer.add(
                    "capture.compress", "capture", start, time.perf_counter() - start
                )
            if OBS.recorder is not None:
                OBS.recorder.record_chunk_written(len(stored), raw_len)
        else:
            stored = zlib.compress(self._chunk, 6) if self.compress else self._chunk
        offset = self._file.tell()
        self._file.write(stored)
        self._chunks.append(
            ChunkInfo(
                index=len(self._chunks),
                offset=offset,
                stored_len=len(stored),
                raw_len=raw_len,
                records=self._chunk_records,
                crc=zlib.crc32(stored) & 0xFFFFFFFF,
            )
        )
        self.stats.stored_bytes += len(stored)
        self.stats.chunks += 1
        self._chunk = bytearray()
        self._chunk_records = 0
        self._encoder.reset()

    # ------------------------------------------------------------------ lifecycle

    def close(self) -> TraceStats:
        """Flush the final chunk, write the index, patch the header."""
        if self._closed:
            return self.stats
        self._flush_chunk()
        index_offset = self._file.tell()
        self._file.write(_INDEX_HEADER.pack(_INDEX_MAGIC, len(self._chunks)))
        for chunk in self._chunks:
            self._file.write(
                _INDEX_ENTRY.pack(
                    chunk.offset, chunk.stored_len, chunk.raw_len, chunk.records, chunk.crc
                )
            )
        self._file.write(
            _INDEX_TOTALS.pack(
                self.stats.records,
                self.stats.instructions,
                self.stats.annotations,
                self.stats.raw_bytes,
            )
        )
        self._file.seek(0)
        flags = _FLAG_ZLIB if self.compress else 0
        self._file.write(_HEADER.pack(_MAGIC, _VERSION, flags, self.chunk_bytes, index_offset))
        self._file.close()
        self._closed = True
        return self.stats

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class TraceReader:
    """Random-access reader over a chunked trace file."""

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = os.fspath(path)
        self._file = open(self.path, "rb")
        try:
            self._parse()
        except Exception:
            self._file.close()
            raise

    # ------------------------------------------------------------------ parsing

    def _parse(self) -> None:
        file_size = os.fstat(self._file.fileno()).st_size
        header = self._file.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise TraceFormatError(f"{self.path}: file shorter than trace header")
        magic, version, flags, chunk_bytes, index_offset = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise TraceFormatError(f"{self.path}: bad magic {magic!r}")
        if not _MIN_VERSION <= version <= _VERSION:
            raise TraceFormatError(f"{self.path}: unsupported trace version {version}")
        if index_offset == 0 or index_offset > file_size:
            raise TraceFormatError(f"{self.path}: missing index (truncated trace?)")
        self.version = version
        self.compressed = bool(flags & _FLAG_ZLIB)
        self.chunk_bytes = chunk_bytes
        self._index_offset = index_offset

        self._file.seek(index_offset)
        index_header = self._file.read(_INDEX_HEADER.size)
        if len(index_header) < _INDEX_HEADER.size:
            raise TraceFormatError(f"{self.path}: truncated chunk index")
        index_magic, num_chunks = _INDEX_HEADER.unpack(index_header)
        if index_magic != _INDEX_MAGIC:
            raise TraceFormatError(f"{self.path}: bad index magic {index_magic!r}")
        entry_struct = _INDEX_ENTRY if version >= 2 else _INDEX_ENTRY_V1
        self.chunks: List[ChunkInfo] = []
        for i in range(num_chunks):
            entry = self._file.read(entry_struct.size)
            if len(entry) < entry_struct.size:
                raise TraceFormatError(f"{self.path}: truncated index entry {i}")
            if version >= 2:
                offset, stored_len, raw_len, records, crc = entry_struct.unpack(entry)
            else:
                offset, stored_len, raw_len, records = entry_struct.unpack(entry)
                crc = None
            if offset + stored_len > index_offset:
                raise TraceFormatError(
                    f"{self.path}: chunk {i} payload overlaps the index (truncated trace?)"
                )
            self.chunks.append(ChunkInfo(i, offset, stored_len, raw_len, records, crc))
        totals = self._file.read(_INDEX_TOTALS.size)
        if len(totals) < _INDEX_TOTALS.size:
            raise TraceFormatError(f"{self.path}: truncated index totals")
        records, instructions, annotations, raw_bytes = _INDEX_TOTALS.unpack(totals)
        # Cross-check the footer totals against the per-chunk entries: a
        # corrupt footer must never silently misreport the record population.
        chunk_records = sum(c.records for c in self.chunks)
        if records != chunk_records:
            raise TraceFormatError(
                f"{self.path}: index totals claim {records} records but chunk "
                f"entries sum to {chunk_records} (corrupt index?)"
            )
        if instructions + annotations != records:
            raise TraceFormatError(
                f"{self.path}: index totals are inconsistent "
                f"({instructions} instructions + {annotations} annotations "
                f"!= {records} records)"
            )
        chunk_raw = sum(c.raw_len for c in self.chunks)
        if raw_bytes != chunk_raw:
            raise TraceFormatError(
                f"{self.path}: index totals claim {raw_bytes} raw bytes but "
                f"chunk entries sum to {chunk_raw} (corrupt index?)"
            )
        self.stats = TraceStats(
            records=records,
            instructions=instructions,
            annotations=annotations,
            raw_bytes=raw_bytes,
            stored_bytes=sum(c.stored_len for c in self.chunks),
            chunks=num_chunks,
        )

    # ------------------------------------------------------------------ access

    @property
    def num_chunks(self) -> int:
        """Number of chunks in the trace."""
        return len(self.chunks)

    @property
    def num_records(self) -> int:
        """Total records in the trace (from the index totals)."""
        return self.stats.records

    def _chunk_payload(self, index: int):
        """Read and decompress one chunk's raw codec payload.

        Returns a byte source for the decoders: the decompressed buffer for
        zlib chunks, or a zero-copy ``memoryview`` over the read buffer for
        uncompressed chunks (no ``bytes`` slicing/copying on the decode
        path).
        """
        if not 0 <= index < len(self.chunks):
            raise IndexError(f"chunk {index} out of range (trace has {len(self.chunks)})")
        chunk = self.chunks[index]
        if OBS.enabled:
            return self._chunk_payload_observed(chunk, index)
        self._file.seek(chunk.offset)
        stored = self._file.read(chunk.stored_len)
        if len(stored) < chunk.stored_len:
            raise TraceFormatError(f"{self.path}: chunk {index} truncated on disk")
        if chunk.crc is not None:
            actual = zlib.crc32(stored) & 0xFFFFFFFF
            if actual != chunk.crc:
                raise TraceFormatError(
                    f"{self.path}: chunk {index} CRC mismatch "
                    f"(stored {chunk.crc:#010x}, computed {actual:#010x})"
                )
        if self.compressed:
            try:
                raw = zlib.decompress(stored)
            except zlib.error as exc:
                raise TraceFormatError(f"{self.path}: chunk {index} corrupt: {exc}") from exc
        else:
            raw = memoryview(stored)
        if len(raw) != chunk.raw_len:
            raise TraceFormatError(
                f"{self.path}: chunk {index} raw size mismatch "
                f"({len(raw)} != {chunk.raw_len})"
            )
        return raw

    def _chunk_payload_observed(self, chunk, index: int):
        """Telemetry twin of :meth:`_chunk_payload`: spans + byte counters."""
        tracer = OBS.tracer
        start = time.perf_counter()
        self._file.seek(chunk.offset)
        stored = self._file.read(chunk.stored_len)
        if tracer is not None:
            tracer.add("codec.read", "codec", start, time.perf_counter() - start)
        if len(stored) < chunk.stored_len:
            raise TraceFormatError(f"{self.path}: chunk {index} truncated on disk")
        if chunk.crc is not None:
            actual = zlib.crc32(stored) & 0xFFFFFFFF
            if actual != chunk.crc:
                raise TraceFormatError(
                    f"{self.path}: chunk {index} CRC mismatch "
                    f"(stored {chunk.crc:#010x}, computed {actual:#010x})"
                )
        if self.compressed:
            start = time.perf_counter()
            try:
                raw = zlib.decompress(stored)
            except zlib.error as exc:
                raise TraceFormatError(f"{self.path}: chunk {index} corrupt: {exc}") from exc
            if tracer is not None:
                tracer.add("codec.decompress", "codec", start, time.perf_counter() - start)
        else:
            raw = memoryview(stored)
        if len(raw) != chunk.raw_len:
            raise TraceFormatError(
                f"{self.path}: chunk {index} raw size mismatch "
                f"({len(raw)} != {chunk.raw_len})"
            )
        if OBS.recorder is not None:
            OBS.recorder.record_chunk_read(chunk.stored_len, chunk.raw_len)
        return raw

    def read_chunk(self, index: int) -> List[Record]:
        """Decode and return all records of one chunk."""
        raw = self._chunk_payload(index)
        try:
            return decode_records(raw, expected_count=self.chunks[index].records)
        except TraceCodecError as exc:
            raise TraceFormatError(f"{self.path}: chunk {index} corrupt: {exc}") from exc

    def read_chunk_columns(self, index: int) -> RecordColumns:
        """Decode one chunk straight into :class:`RecordColumns`.

        The structure-of-arrays twin of :meth:`read_chunk`, feeding the
        columnar dispatch engine without constructing one record object per
        row.  Raises the same :class:`TraceFormatError` on corruption.
        """
        raw = self._chunk_payload(index)
        if not OBS.enabled:
            try:
                return decode_record_columns(raw, self.chunks[index].records)
            except TraceCodecError as exc:
                raise TraceFormatError(f"{self.path}: chunk {index} corrupt: {exc}") from exc
        start = time.perf_counter()
        try:
            columns = decode_record_columns(raw, self.chunks[index].records)
        except TraceCodecError as exc:
            raise TraceFormatError(f"{self.path}: chunk {index} corrupt: {exc}") from exc
        if OBS.tracer is not None:
            OBS.tracer.add(
                "codec.decode_columns", "codec", start, time.perf_counter() - start
            )
        if OBS.recorder is not None:
            OBS.recorder.record_chunk_decoded(self.chunks[index].records)
        return columns

    def chunk_record_counts(self) -> Tuple[int, ...]:
        """Record count per chunk, in index order.

        The sharding layers carry these counts on every
        :class:`~repro.trace.replay.ShardTask` so quarantine accounting
        never needs to re-open the trace in the parent or the workers.
        """
        return tuple(info.records for info in self.chunks)

    def iter_records(self) -> Iterator[Record]:
        """Yield every record of the trace in order."""
        for index in range(len(self.chunks)):
            yield from self.read_chunk(index)

    def __iter__(self) -> Iterator[Record]:
        return self.iter_records()

    def close(self) -> None:
        """Release the underlying file handle."""
        self._file.close()

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ----------------------------------------------------------------------- audit


@dataclass(frozen=True)
class ChunkAudit:
    """Outcome of auditing one chunk (CRC + full decode)."""

    index: int
    records: int
    stored_len: int
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class TraceAudit:
    """Outcome of :func:`verify_trace`: file-level + per-chunk findings."""

    path: str
    version: Optional[int] = None
    stats: Optional[TraceStats] = None
    #: header/index/totals problem that prevented any chunk audit
    file_error: Optional[str] = None
    chunks: List[ChunkAudit] = field(default_factory=list)

    @property
    def bad_chunks(self) -> List[ChunkAudit]:
        return [chunk for chunk in self.chunks if not chunk.ok]

    @property
    def ok(self) -> bool:
        return self.file_error is None and not self.bad_chunks


def verify_trace(path: Union[str, os.PathLike], decode: bool = True) -> TraceAudit:
    """Audit a trace file: header, index, totals, per-chunk CRCs and decode.

    Never raises for corruption -- every problem lands in the returned
    :class:`TraceAudit` so a caller (or ``python -m repro.trace verify``)
    can report all damage in one pass.  ``decode=False`` checks only the
    structural layers (header/index/CRC), skipping the codec decode.
    """
    audit = TraceAudit(path=os.fspath(path))
    try:
        reader = TraceReader(path)
    except TraceFormatError as exc:
        audit.file_error = str(exc)
        return audit
    except OSError as exc:
        audit.file_error = f"{audit.path}: {exc}"
        return audit
    with reader:
        audit.version = reader.version
        audit.stats = reader.stats
        for info in reader.chunks:
            error = None
            try:
                if decode:
                    decoded = reader.read_chunk(info.index)
                    if len(decoded) != info.records:
                        error = (
                            f"decoded {len(decoded)} records, "
                            f"index claims {info.records}"
                        )
                else:
                    reader._chunk_payload(info.index)
            except (TraceFormatError, TraceCodecError) as exc:
                error = str(exc)
            audit.chunks.append(
                ChunkAudit(
                    index=info.index,
                    records=info.records,
                    stored_len=info.stored_len,
                    error=error,
                )
            )
    return audit
