"""Chunked trace files: capture a log once, re-analyse it many times.

File layout (all integers little-endian)::

    header   : magic "LBATRC01" | u16 version | u16 flags | u32 chunk_bytes
               | u64 index_offset (patched on close)
    chunks   : concatenated chunk payloads (zlib-compressed when flag set)
    index    : magic "INDX" | u32 num_chunks
               | per chunk: u64 offset | u32 stored_len | u32 raw_len | u32 records
                            | u32 crc32 (version >= 2)
               | u64 total_records | u64 instructions | u64 annotations | u64 raw_bytes

Each chunk is an independently decodable unit: the record codec's delta
chains are reset at every chunk boundary, so a reader (or a parallel replay
worker) can seek straight to any chunk via the index without touching the
bytes before it.  Chunks are closed when their raw payload reaches the
configured ``chunk_bytes`` target, so all chunks of a trace have roughly
the same size (the last one may be short).

Version 2 adds a CRC32 of each chunk's *stored* bytes to the index entry,
verified on every chunk read, so payload corruption is detected before the
decompressor or codec ever see the damage (and detected at all for
uncompressed traces, whose payloads would otherwise often still "parse").
Version 1 traces remain readable; their chunks simply carry no checksum.
The index totals are cross-checked against the per-chunk entries on open,
so a damaged footer can never silently misreport the record population.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple, Union

from repro.core.events import AnnotationRecord, InstructionRecord
from repro.obs.runtime import OBS
from repro.trace.codec import (
    RecordColumns,
    RecordEncoder,
    TraceCodecError,
    decode_record_columns,
    decode_records,
)

Record = Union[InstructionRecord, AnnotationRecord]

_MAGIC = b"LBATRC01"
_INDEX_MAGIC = b"INDX"
_VERSION = 2
#: Oldest trace version this reader still understands (v1 has no CRCs).
_MIN_VERSION = 1
_FLAG_ZLIB = 1 << 0

_HEADER = struct.Struct("<8sHHIQ")
_INDEX_HEADER = struct.Struct("<4sI")
_INDEX_ENTRY_V1 = struct.Struct("<QIII")
_INDEX_ENTRY = struct.Struct("<QIIII")
_INDEX_TOTALS = struct.Struct("<QQQQ")

#: Default raw payload size at which a chunk is closed.
DEFAULT_CHUNK_BYTES = 64 * 1024


class TraceFormatError(ValueError):
    """Raised when a trace file is malformed, truncated or corrupt."""


@dataclass(frozen=True)
class ChunkInfo:
    """Index entry describing one chunk."""

    index: int
    offset: int
    stored_len: int
    raw_len: int
    records: int
    #: CRC32 of the stored (possibly compressed) payload; ``None`` for
    #: version-1 traces, which predate per-chunk checksums.
    crc: Optional[int] = None


@dataclass
class TraceStats:
    """Aggregate statistics of a captured trace."""

    records: int = 0
    instructions: int = 0
    annotations: int = 0
    raw_bytes: int = 0
    stored_bytes: int = 0
    chunks: int = 0

    @property
    def compression_ratio(self) -> float:
        """Raw codec bytes over stored (possibly zlib-compressed) bytes."""
        if not self.stored_bytes:
            return 1.0
        return self.raw_bytes / self.stored_bytes

    @property
    def bytes_per_record(self) -> float:
        """Average stored bytes per record."""
        if not self.records:
            return 0.0
        return self.stored_bytes / self.records


class TraceWriter:
    """Streams records into a chunked trace file.

    Usable as a context manager; :meth:`close` finalizes the chunk in
    flight, appends the index and patches the header's index offset.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        compress: bool = True,
    ) -> None:
        if chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        self.path = os.fspath(path)
        self.chunk_bytes = chunk_bytes
        self.compress = compress
        self.stats = TraceStats()
        self._encoder = RecordEncoder()
        self._chunk = bytearray()
        self._chunk_records = 0
        self._chunks: List[ChunkInfo] = []
        self._file = open(self.path, "wb")
        self._closed = False
        flags = _FLAG_ZLIB if compress else 0
        self._file.write(_HEADER.pack(_MAGIC, _VERSION, flags, chunk_bytes, 0))

    # ------------------------------------------------------------------ writing

    def append(self, record: Record) -> int:
        """Serialize one record into the current chunk; returns its raw bytes."""
        if self._closed:
            raise ValueError("trace writer is closed")
        # Zero-copy append: the encoder writes straight into the chunk
        # buffer instead of materialising a per-record ``bytes`` object.
        encoded_len = self._encoder.encode_into(self._chunk, record)
        self._chunk_records += 1
        self.stats.records += 1
        if isinstance(record, AnnotationRecord):
            self.stats.annotations += 1
        else:
            self.stats.instructions += 1
        self.stats.raw_bytes += encoded_len
        if len(self._chunk) >= self.chunk_bytes:
            self._flush_chunk()
        return encoded_len

    def extend(self, records) -> None:
        """Append a record sequence."""
        for record in records:
            self.append(record)

    def _flush_chunk(self) -> None:
        if not self._chunk_records:
            return
        # Compress (or write) straight from the chunk bytearray -- no
        # intermediate ``bytes`` copy of the raw payload.
        raw_len = len(self._chunk)
        if OBS.enabled:
            start = time.perf_counter()
            stored = zlib.compress(self._chunk, 6) if self.compress else self._chunk
            if OBS.tracer is not None:
                OBS.tracer.add(
                    "capture.compress", "capture", start, time.perf_counter() - start
                )
            if OBS.recorder is not None:
                OBS.recorder.record_chunk_written(len(stored), raw_len)
        else:
            stored = zlib.compress(self._chunk, 6) if self.compress else self._chunk
        offset = self._file.tell()
        self._file.write(stored)
        self._chunks.append(
            ChunkInfo(
                index=len(self._chunks),
                offset=offset,
                stored_len=len(stored),
                raw_len=raw_len,
                records=self._chunk_records,
                crc=zlib.crc32(stored) & 0xFFFFFFFF,
            )
        )
        self.stats.stored_bytes += len(stored)
        self.stats.chunks += 1
        self._chunk = bytearray()
        self._chunk_records = 0
        self._encoder.reset()

    # ------------------------------------------------------------------ lifecycle

    def close(self) -> TraceStats:
        """Flush the final chunk, write the index, patch the header."""
        if self._closed:
            return self.stats
        self._flush_chunk()
        index_offset = self._file.tell()
        self._file.write(_INDEX_HEADER.pack(_INDEX_MAGIC, len(self._chunks)))
        for chunk in self._chunks:
            self._file.write(
                _INDEX_ENTRY.pack(
                    chunk.offset, chunk.stored_len, chunk.raw_len, chunk.records, chunk.crc
                )
            )
        self._file.write(
            _INDEX_TOTALS.pack(
                self.stats.records,
                self.stats.instructions,
                self.stats.annotations,
                self.stats.raw_bytes,
            )
        )
        self._file.seek(0)
        flags = _FLAG_ZLIB if self.compress else 0
        self._file.write(_HEADER.pack(_MAGIC, _VERSION, flags, self.chunk_bytes, index_offset))
        self._file.close()
        self._closed = True
        return self.stats

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class TraceReader:
    """Random-access reader over a chunked trace file."""

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = os.fspath(path)
        self._file = open(self.path, "rb")
        try:
            self._parse()
        except Exception:
            self._file.close()
            raise

    # ------------------------------------------------------------------ parsing

    def _parse(self) -> None:
        file_size = os.fstat(self._file.fileno()).st_size
        header = self._file.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise TraceFormatError(f"{self.path}: file shorter than trace header")
        magic, version, flags, chunk_bytes, index_offset = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise TraceFormatError(f"{self.path}: bad magic {magic!r}")
        if not _MIN_VERSION <= version <= _VERSION:
            raise TraceFormatError(f"{self.path}: unsupported trace version {version}")
        if index_offset == 0 or index_offset > file_size:
            raise TraceFormatError(f"{self.path}: missing index (truncated trace?)")
        self.version = version
        self.compressed = bool(flags & _FLAG_ZLIB)
        self.chunk_bytes = chunk_bytes
        self._index_offset = index_offset

        self._file.seek(index_offset)
        index_header = self._file.read(_INDEX_HEADER.size)
        if len(index_header) < _INDEX_HEADER.size:
            raise TraceFormatError(f"{self.path}: truncated chunk index")
        index_magic, num_chunks = _INDEX_HEADER.unpack(index_header)
        if index_magic != _INDEX_MAGIC:
            raise TraceFormatError(f"{self.path}: bad index magic {index_magic!r}")
        entry_struct = _INDEX_ENTRY if version >= 2 else _INDEX_ENTRY_V1
        self.chunks: List[ChunkInfo] = []
        for i in range(num_chunks):
            entry = self._file.read(entry_struct.size)
            if len(entry) < entry_struct.size:
                raise TraceFormatError(f"{self.path}: truncated index entry {i}")
            if version >= 2:
                offset, stored_len, raw_len, records, crc = entry_struct.unpack(entry)
            else:
                offset, stored_len, raw_len, records = entry_struct.unpack(entry)
                crc = None
            if offset + stored_len > index_offset:
                raise TraceFormatError(
                    f"{self.path}: chunk {i} payload overlaps the index (truncated trace?)"
                )
            self.chunks.append(ChunkInfo(i, offset, stored_len, raw_len, records, crc))
        totals = self._file.read(_INDEX_TOTALS.size)
        if len(totals) < _INDEX_TOTALS.size:
            raise TraceFormatError(f"{self.path}: truncated index totals")
        records, instructions, annotations, raw_bytes = _INDEX_TOTALS.unpack(totals)
        # Cross-check the footer totals against the per-chunk entries: a
        # corrupt footer must never silently misreport the record population.
        chunk_records = sum(c.records for c in self.chunks)
        if records != chunk_records:
            raise TraceFormatError(
                f"{self.path}: index totals claim {records} records but chunk "
                f"entries sum to {chunk_records} (corrupt index?)"
            )
        if instructions + annotations != records:
            raise TraceFormatError(
                f"{self.path}: index totals are inconsistent "
                f"({instructions} instructions + {annotations} annotations "
                f"!= {records} records)"
            )
        chunk_raw = sum(c.raw_len for c in self.chunks)
        if raw_bytes != chunk_raw:
            raise TraceFormatError(
                f"{self.path}: index totals claim {raw_bytes} raw bytes but "
                f"chunk entries sum to {chunk_raw} (corrupt index?)"
            )
        self.stats = TraceStats(
            records=records,
            instructions=instructions,
            annotations=annotations,
            raw_bytes=raw_bytes,
            stored_bytes=sum(c.stored_len for c in self.chunks),
            chunks=num_chunks,
        )

    # ------------------------------------------------------------------ access

    @property
    def num_chunks(self) -> int:
        """Number of chunks in the trace."""
        return len(self.chunks)

    @property
    def num_records(self) -> int:
        """Total records in the trace (from the index totals)."""
        return self.stats.records

    def _chunk_payload(self, index: int):
        """Read and decompress one chunk's raw codec payload.

        Returns a byte source for the decoders: the decompressed buffer for
        zlib chunks, or a zero-copy ``memoryview`` over the read buffer for
        uncompressed chunks (no ``bytes`` slicing/copying on the decode
        path).
        """
        if not 0 <= index < len(self.chunks):
            raise IndexError(f"chunk {index} out of range (trace has {len(self.chunks)})")
        chunk = self.chunks[index]
        if OBS.enabled:
            return self._chunk_payload_observed(chunk, index)
        self._file.seek(chunk.offset)
        stored = self._file.read(chunk.stored_len)
        if len(stored) < chunk.stored_len:
            raise TraceFormatError(f"{self.path}: chunk {index} truncated on disk")
        if chunk.crc is not None:
            actual = zlib.crc32(stored) & 0xFFFFFFFF
            if actual != chunk.crc:
                raise TraceFormatError(
                    f"{self.path}: chunk {index} CRC mismatch "
                    f"(stored {chunk.crc:#010x}, computed {actual:#010x})"
                )
        if self.compressed:
            try:
                raw = zlib.decompress(stored)
            except zlib.error as exc:
                raise TraceFormatError(f"{self.path}: chunk {index} corrupt: {exc}") from exc
        else:
            raw = memoryview(stored)
        if len(raw) != chunk.raw_len:
            raise TraceFormatError(
                f"{self.path}: chunk {index} raw size mismatch "
                f"({len(raw)} != {chunk.raw_len})"
            )
        return raw

    def _chunk_payload_observed(self, chunk, index: int):
        """Telemetry twin of :meth:`_chunk_payload`: spans + byte counters."""
        tracer = OBS.tracer
        start = time.perf_counter()
        self._file.seek(chunk.offset)
        stored = self._file.read(chunk.stored_len)
        if tracer is not None:
            tracer.add("codec.read", "codec", start, time.perf_counter() - start)
        if len(stored) < chunk.stored_len:
            raise TraceFormatError(f"{self.path}: chunk {index} truncated on disk")
        if chunk.crc is not None:
            actual = zlib.crc32(stored) & 0xFFFFFFFF
            if actual != chunk.crc:
                raise TraceFormatError(
                    f"{self.path}: chunk {index} CRC mismatch "
                    f"(stored {chunk.crc:#010x}, computed {actual:#010x})"
                )
        if self.compressed:
            start = time.perf_counter()
            try:
                raw = zlib.decompress(stored)
            except zlib.error as exc:
                raise TraceFormatError(f"{self.path}: chunk {index} corrupt: {exc}") from exc
            if tracer is not None:
                tracer.add("codec.decompress", "codec", start, time.perf_counter() - start)
        else:
            raw = memoryview(stored)
        if len(raw) != chunk.raw_len:
            raise TraceFormatError(
                f"{self.path}: chunk {index} raw size mismatch "
                f"({len(raw)} != {chunk.raw_len})"
            )
        if OBS.recorder is not None:
            OBS.recorder.record_chunk_read(chunk.stored_len, chunk.raw_len)
        return raw

    def read_chunk(self, index: int) -> List[Record]:
        """Decode and return all records of one chunk."""
        raw = self._chunk_payload(index)
        try:
            return decode_records(raw, expected_count=self.chunks[index].records)
        except TraceCodecError as exc:
            raise TraceFormatError(f"{self.path}: chunk {index} corrupt: {exc}") from exc

    def read_chunk_columns(self, index: int) -> RecordColumns:
        """Decode one chunk straight into :class:`RecordColumns`.

        The structure-of-arrays twin of :meth:`read_chunk`, feeding the
        columnar dispatch engine without constructing one record object per
        row.  Raises the same :class:`TraceFormatError` on corruption.
        """
        raw = self._chunk_payload(index)
        if not OBS.enabled:
            try:
                return decode_record_columns(raw, self.chunks[index].records)
            except TraceCodecError as exc:
                raise TraceFormatError(f"{self.path}: chunk {index} corrupt: {exc}") from exc
        start = time.perf_counter()
        try:
            columns = decode_record_columns(raw, self.chunks[index].records)
        except TraceCodecError as exc:
            raise TraceFormatError(f"{self.path}: chunk {index} corrupt: {exc}") from exc
        if OBS.tracer is not None:
            OBS.tracer.add(
                "codec.decode_columns", "codec", start, time.perf_counter() - start
            )
        if OBS.recorder is not None:
            OBS.recorder.record_chunk_decoded(self.chunks[index].records)
        return columns

    def chunk_record_counts(self) -> Tuple[int, ...]:
        """Record count per chunk, in index order.

        The sharding layers carry these counts on every
        :class:`~repro.trace.replay.ShardTask` so quarantine accounting
        never needs to re-open the trace in the parent or the workers.
        """
        return tuple(info.records for info in self.chunks)

    def iter_records(self) -> Iterator[Record]:
        """Yield every record of the trace in order."""
        for index in range(len(self.chunks)):
            yield from self.read_chunk(index)

    def __iter__(self) -> Iterator[Record]:
        return self.iter_records()

    def close(self) -> None:
        """Release the underlying file handle."""
        self._file.close()

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ----------------------------------------------------------------------- audit


@dataclass(frozen=True)
class ChunkAudit:
    """Outcome of auditing one chunk (CRC + full decode)."""

    index: int
    records: int
    stored_len: int
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class TraceAudit:
    """Outcome of :func:`verify_trace`: file-level + per-chunk findings."""

    path: str
    version: Optional[int] = None
    stats: Optional[TraceStats] = None
    #: header/index/totals problem that prevented any chunk audit
    file_error: Optional[str] = None
    chunks: List[ChunkAudit] = field(default_factory=list)

    @property
    def bad_chunks(self) -> List[ChunkAudit]:
        return [chunk for chunk in self.chunks if not chunk.ok]

    @property
    def ok(self) -> bool:
        return self.file_error is None and not self.bad_chunks


def repair_trace(path: Union[str, os.PathLike]) -> "TraceRepair":
    """Recover a partial or damaged trace by truncating to its valid prefix.

    The repair keeps the longest prefix of chunks that pass CRC *and* a
    full codec decode, rewrites the chunk index and totals footer to
    describe exactly that prefix, and replaces the file atomically
    (temp file + ``os.replace``), so a crash mid-repair can never leave a
    half-written trace behind.  Three damage shapes are handled:

    * **damaged chunk** -- the index is intact but a chunk fails its CRC or
      decode: every chunk before the first damaged one is kept;
    * **mid-footer truncation** -- the file ends inside the index: the
      surviving index entries validate their chunks, and (for compressed
      traces) the remaining chunk payloads are re-discovered by walking
      the self-terminating zlib streams;
    * **mid-chunk truncation** -- the file ends inside the chunk data and
      the index is gone entirely: compressed traces are re-indexed by the
      same zlib-stream walk; uncompressed traces have no discoverable
      chunk boundaries and are unrecoverable.

    Returns a :class:`TraceRepair`; ``action`` is ``"intact"`` when the
    file already verifies (nothing written), ``"repaired"`` when a valid
    prefix was rewritten, and ``"unrecoverable"`` when not even one chunk
    survives.  The rewritten file is always version-:data:`_VERSION` (v1
    inputs gain per-chunk CRCs).
    """
    path = os.fspath(path)
    repair = TraceRepair(path=path)
    audit = verify_trace(path)
    if audit.ok:
        repair.action = "intact"
        repair.kept_chunks = len(audit.chunks)
        repair.kept_records = audit.stats.records if audit.stats else 0
        repair.lost_chunks = 0
        repair.lost_records = 0
        return repair
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        repair.detail = f"unreadable: {exc}"
        return repair
    if len(blob) < _HEADER.size:
        repair.detail = "file shorter than the trace header"
        return repair
    magic, version, flags, chunk_bytes, index_offset = _HEADER.unpack_from(blob)
    if magic != _MAGIC:
        repair.detail = f"bad magic {magic!r}"
        return repair
    if not _MIN_VERSION <= version <= _VERSION:
        repair.detail = f"unsupported trace version {version}"
        return repair
    compressed = bool(flags & _FLAG_ZLIB)
    # Chunk payloads live between the header and wherever the index starts
    # (or the end of what survives of the file, when the index is gone).
    data_limit = index_offset if _HEADER.size <= index_offset <= len(blob) else len(blob)

    kept: List[Tuple[bytes, int, int]] = []  # (stored, raw_len, records)
    entries_truncated = True
    scan_from = _HEADER.size
    if index_offset and index_offset + _INDEX_HEADER.size <= len(blob):
        index_magic, num_chunks = _INDEX_HEADER.unpack_from(blob, index_offset)
        if index_magic == _INDEX_MAGIC:
            entry_struct = _INDEX_ENTRY if version >= 2 else _INDEX_ENTRY_V1
            position = index_offset + _INDEX_HEADER.size
            parsed = []
            for _ in range(num_chunks):
                if position + entry_struct.size > len(blob):
                    break
                parsed.append(entry_struct.unpack_from(blob, position))
                position += entry_struct.size
            # A fully-present entry list means any damage is in the chunks
            # (or the totals): scanning past a CRC-failing chunk would
            # resurrect bytes the checksum already condemned, so the scan
            # below only continues where entries were *lost*, not refuted.
            entries_truncated = len(parsed) < num_chunks
            for fields in parsed:
                offset, stored_len, raw_len, records = fields[:4]
                crc = fields[4] if version >= 2 else None
                if offset != scan_from or offset + stored_len > data_limit:
                    entries_truncated = False
                    break
                stored = blob[offset:offset + stored_len]
                if not _chunk_valid(stored, raw_len, records, crc, compressed):
                    entries_truncated = False
                    break
                kept.append((stored, raw_len, records))
                scan_from = offset + stored_len
    if entries_truncated and compressed:
        kept.extend(_scan_zlib_chunks(blob, scan_from, data_limit))
    if not kept:
        if not compressed and entries_truncated:
            repair.detail = (
                "index unusable and the trace is uncompressed: chunk "
                "boundaries cannot be re-discovered"
            )
        else:
            repair.detail = "no intact chunk prefix survives"
        return repair

    repair.action = "repaired"
    repair.kept_chunks = len(kept)
    repair.kept_records = sum(records for _stored, _raw, records in kept)
    if audit.stats is not None:
        # The original footer was readable: the loss is exactly known.
        repair.lost_chunks = audit.stats.chunks - repair.kept_chunks
        repair.lost_records = audit.stats.records - repair.kept_records
    _rewrite_trace(path, chunk_bytes, compressed, kept)
    return repair


def _chunk_valid(
    stored: bytes, raw_len: int, records: int, crc: Optional[int], compressed: bool
) -> bool:
    """True when a stored chunk passes CRC, size and full-decode checks."""
    if crc is not None and zlib.crc32(stored) & 0xFFFFFFFF != crc:
        return False
    if compressed:
        try:
            raw = zlib.decompress(stored)
        except zlib.error:
            return False
    else:
        raw = stored
    if len(raw) != raw_len:
        return False
    try:
        decoded = decode_records(raw, expected_count=records)
    except TraceCodecError:
        return False
    return len(decoded) == records


def _scan_zlib_chunks(
    blob: bytes, start: int, limit: int
) -> List[Tuple[bytes, int, int]]:
    """Re-discover chunk boundaries by walking self-terminating zlib streams.

    Every compressed chunk is one complete zlib stream, so a lost index can
    be rebuilt by decompressing stream after stream: each stream's consumed
    length is its stored size, and a full codec decode of the payload both
    validates the chunk and recounts its records.  Stops at the first
    incomplete or undecodable stream (the truncation/damage point).
    """
    found: List[Tuple[bytes, int, int]] = []
    offset = start
    while offset < limit:
        decompressor = zlib.decompressobj()
        try:
            raw = decompressor.decompress(blob[offset:limit])
        except zlib.error:
            break
        if not decompressor.eof:
            break  # stream ran past the end of the surviving bytes
        consumed = (limit - offset) - len(decompressor.unused_data)
        try:
            records = len(decode_records(raw))
        except TraceCodecError:
            break
        if not records:
            break
        found.append((blob[offset:offset + consumed], len(raw), records))
        offset += consumed
    return found


def _rewrite_trace(
    path: str, chunk_bytes: int, compressed: bool, kept: List[Tuple[bytes, int, int]]
) -> None:
    """Atomically rewrite ``path`` as a valid trace holding ``kept`` chunks."""
    tmp_path = path + ".repair"
    flags = _FLAG_ZLIB if compressed else 0
    instructions = 0
    annotations = 0
    with open(tmp_path, "wb") as out:
        out.write(_HEADER.pack(_MAGIC, _VERSION, flags, chunk_bytes, 0))
        infos: List[ChunkInfo] = []
        for stored, raw_len, records in kept:
            offset = out.tell()
            out.write(stored)
            infos.append(ChunkInfo(
                index=len(infos), offset=offset, stored_len=len(stored),
                raw_len=raw_len, records=records,
                crc=zlib.crc32(stored) & 0xFFFFFFFF,
            ))
            raw = zlib.decompress(stored) if compressed else stored
            for record in decode_records(raw, expected_count=records):
                if isinstance(record, AnnotationRecord):
                    annotations += 1
                else:
                    instructions += 1
        index_offset = out.tell()
        out.write(_INDEX_HEADER.pack(_INDEX_MAGIC, len(infos)))
        for info in infos:
            out.write(_INDEX_ENTRY.pack(
                info.offset, info.stored_len, info.raw_len, info.records, info.crc
            ))
        out.write(_INDEX_TOTALS.pack(
            instructions + annotations,
            instructions,
            annotations,
            sum(info.raw_len for info in infos),
        ))
        out.seek(0)
        out.write(_HEADER.pack(_MAGIC, _VERSION, flags, chunk_bytes, index_offset))
        out.flush()
        os.fsync(out.fileno())
    os.replace(tmp_path, path)


@dataclass
class TraceRepair:
    """Outcome of :func:`repair_trace`."""

    path: str
    #: ``"intact"`` (already valid, nothing written), ``"repaired"``
    #: (valid prefix rewritten in place) or ``"unrecoverable"``.
    action: str = "unrecoverable"
    detail: str = ""
    kept_chunks: int = 0
    kept_records: int = 0
    #: Chunks/records lost to the repair; ``None`` when the original footer
    #: was itself lost, making the original population unknowable.
    lost_chunks: Optional[int] = None
    lost_records: Optional[int] = None

    @property
    def ok(self) -> bool:
        """True unless the trace was unrecoverable."""
        return self.action != "unrecoverable"

    @property
    def changed(self) -> bool:
        """True when the file on disk was rewritten."""
        return self.action == "repaired"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "action": self.action,
            "detail": self.detail,
            "kept_chunks": self.kept_chunks,
            "kept_records": self.kept_records,
            "lost_chunks": self.lost_chunks,
            "lost_records": self.lost_records,
        }


def verify_trace(path: Union[str, os.PathLike], decode: bool = True) -> TraceAudit:
    """Audit a trace file: header, index, totals, per-chunk CRCs and decode.

    Never raises for corruption -- every problem lands in the returned
    :class:`TraceAudit` so a caller (or ``python -m repro.trace verify``)
    can report all damage in one pass.  ``decode=False`` checks only the
    structural layers (header/index/CRC), skipping the codec decode.
    """
    audit = TraceAudit(path=os.fspath(path))
    try:
        reader = TraceReader(path)
    except TraceFormatError as exc:
        audit.file_error = str(exc)
        return audit
    except OSError as exc:
        audit.file_error = f"{audit.path}: {exc}"
        return audit
    with reader:
        audit.version = reader.version
        audit.stats = reader.stats
        for info in reader.chunks:
            error = None
            try:
                if decode:
                    decoded = reader.read_chunk(info.index)
                    if len(decoded) != info.records:
                        error = (
                            f"decoded {len(decoded)} records, "
                            f"index claims {info.records}"
                        )
                else:
                    reader._chunk_payload(info.index)
            except (TraceFormatError, TraceCodecError) as exc:
                error = str(exc)
            audit.chunks.append(
                ChunkAudit(
                    index=info.index,
                    records=info.records,
                    stored_len=info.stored_len,
                    error=error,
                )
            )
    return audit
