"""Workloads: synthetic analogues of the paper's benchmark programs.

The paper evaluates on the SPEC2000 integer benchmarks (single-threaded
lifeguards) and five multithreaded programs (LOCKSET, Table 3).  Neither
suite is redistributable or runnable inside this repository, so
:mod:`repro.workloads.spec` and :mod:`repro.workloads.multithreaded` provide
one synthetic program per benchmark, written against the
:mod:`repro.isa` ISA, with instruction mixes and memory behaviour chosen to
span the same qualitative range (see DESIGN.md for the substitution
rationale).  :mod:`repro.workloads.attacks` and :mod:`repro.workloads.bugs`
provide the buggy/exploited programs used to validate lifeguard detection,
and :mod:`repro.workloads.generator` provides a seeded random program
generator for property-based testing.
"""

from repro.workloads.base import (
    MULTITHREADED_WORKLOADS,
    SPEC_WORKLOADS,
    Workload,
    get_workload,
    workload_names,
)
from repro.workloads import spec as _spec  # noqa: F401  (registers SPEC workloads)
from repro.workloads import multithreaded as _mt  # noqa: F401  (registers MT workloads)

__all__ = [
    "Workload",
    "SPEC_WORKLOADS",
    "MULTITHREADED_WORKLOADS",
    "get_workload",
    "workload_names",
]
