"""Security-exploit scenarios for TAINTCHECK validation.

The paper's TAINTCHECK targets memory-overwrite exploits: unverified input
(network reads) propagates into a critical sink -- an indirect control
transfer target, the format string of a printf-like call, or a system-call
argument.  Each builder below returns a small program that performs one such
attack through direct (unary) copying, matching the structure the paper's
CVE study found for every overwrite vulnerability it examined, so both the
baseline TAINTCHECK and the IT-accelerated configuration must flag it.
"""

from __future__ import annotations

from repro.isa.instructions import Cond, Imm, Mem, Reg, SyscallKind
from repro.isa.program import Program, ProgramBuilder
from repro.isa.registers import Register
from repro.workloads.patterns import EAX, EBP, EBX, ECX, EDI, EDX, ESI, Patterns


def buffer_overflow_function_pointer(overflow_bytes: int = 16) -> Program:
    """Classic overflow: network input overruns a buffer into a function pointer.

    The program allocates a 64-byte request buffer immediately followed (in
    allocation order) by a dispatch record whose first word is a function
    pointer.  A ``recv`` writes ``64 + overflow_bytes`` bytes through the
    request buffer, overwriting the function pointer with attacker data; the
    program later performs an indirect call through it.
    """
    b = ProgramBuilder("attack_function_pointer")
    p = Patterns(b)
    p.alloc(64, EBP)                       # request buffer
    p.alloc(16, EDI)                       # dispatch record: [handler_ptr, flags...]
    # install the legitimate handler address
    b.mov(Reg(EBX), Imm(0x0804_8000 + 4 * 60))
    b.mov(Mem(base=EDI), Reg(EBX))
    b.mov(Mem(base=EDI, disp=4), Imm(0))
    # attacker-controlled receive overruns the request buffer
    b.syscall(SyscallKind.RECV, Reg(EBP), Imm(64 + overflow_bytes))
    # normal-looking processing of the request
    p.copy_array(EBP, EBP, 8, transform=False)
    # dispatch through the (now corrupted) function pointer
    b.mov(Reg(EAX), Mem(base=EDI))
    b.call_indirect(Reg(EAX))
    b.free(Reg(EBP))
    b.free(Reg(EDI))
    b.halt()
    # a plausible landing pad so the program terminates cleanly if the call survives
    b.label("handler")
    b.ret()
    return b.build()


def format_string_attack() -> Program:
    """Unverified input used directly as the format string of a printf-like call."""
    b = ProgramBuilder("attack_format_string")
    p = Patterns(b)
    p.alloc(128, EBP)
    b.syscall(SyscallKind.READ, Reg(EBP), Imm(128))
    # log the "message" -- passing the tainted buffer as the format string
    b.printf(Reg(EBP))
    b.free(Reg(EBP))
    b.halt()
    return b.build()


def syscall_argument_attack() -> Program:
    """Tainted data passed as a system-call argument (e.g. a pathname)."""
    b = ProgramBuilder("attack_syscall_argument")
    p = Patterns(b)
    p.alloc(64, EBP)                       # network input
    p.alloc(64, EDI)                       # pathname buffer
    b.push(Reg(EDI))
    b.syscall(SyscallKind.RECV, Reg(EBP), Imm(64))
    # copy the attacker-supplied name into the pathname buffer (unary copies)
    p.copy_array(EBP, EDI, 16, transform=False)
    b.pop(Reg(EDI))
    # use the pathname in a system call
    b.syscall(SyscallKind.OTHER, Reg(EDI), Imm(64))
    b.free(Reg(EBP))
    b.free(Reg(EDI))
    b.halt()
    return b.build()


def benign_input_processing() -> Program:
    """Negative control: tainted input is consumed but never reaches a sink.

    TAINTCHECK must stay silent on this program.
    """
    b = ProgramBuilder("benign_input")
    p = Patterns(b)
    p.alloc(128, EBP)
    b.syscall(SyscallKind.READ, Reg(EBP), Imm(128))
    b.mov(Reg(EDX), Imm(0))
    p.sum_array(EBP, 32)
    p.free(EBP)
    b.halt()
    return b.build()


#: All attack builders, keyed by scenario name (used by tests and examples).
ATTACK_SCENARIOS = {
    "function_pointer_overwrite": buffer_overflow_function_pointer,
    "format_string": format_string_attack,
    "syscall_argument": syscall_argument_attack,
}
