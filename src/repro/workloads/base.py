"""Workload abstraction and registry."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Optional, Sequence, Type, Union

from repro.isa.machine import Machine
from repro.isa.program import Program
from repro.isa.threads import ThreadedMachine

ApplicationMachine = Union[Machine, ThreadedMachine]

#: Registry of single-threaded (SPEC-analogue) workloads, keyed by name.
SPEC_WORKLOADS: Dict[str, Type["Workload"]] = {}
#: Registry of multithreaded (Table 3 analogue) workloads, keyed by name.
MULTITHREADED_WORKLOADS: Dict[str, Type["Workload"]] = {}


class Workload(ABC):
    """A runnable monitored program.

    Args:
        scale: multiplies loop trip counts / data sizes.  ``1.0`` corresponds
            to the "reduced input" sizes used by the simulation study
            (tens of thousands of dynamic instructions); experiments may
            scale up for the profiling study or down for fast unit tests.
        threads: number of worker threads for multithreaded workloads
            (default 2, the paper's setup).  Single-threaded workloads
            ignore it; multithreaded workloads whose sharing pattern
            generalises build one thread program per worker.
    """

    #: workload name as it appears in figures (e.g. ``"bzip2"``)
    name: str = "workload"
    #: True for multi-thread workloads (LOCKSET study; two threads by default)
    multithreaded: bool = False
    #: one-line description of what the synthetic program models
    description: str = ""
    #: worker-thread count used when ``threads`` is not given
    default_threads: int = 2

    def __init__(self, scale: float = 1.0, threads: Optional[int] = None) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        if threads is not None and threads < 1:
            raise ValueError("threads must be >= 1")
        self.scale = scale
        self.threads = threads

    @property
    def num_threads(self) -> int:
        """Worker-thread count of this instance (multithreaded workloads)."""
        return self.threads if self.threads is not None else self.default_threads

    def iterations(self, base: int, minimum: int = 1) -> int:
        """Scale a loop trip count."""
        return max(minimum, int(base * self.scale))

    @abstractmethod
    def build_programs(self) -> List[Program]:
        """Build the program(s): one entry per application thread."""

    def build_machine(self, num_cores: int = 1) -> ApplicationMachine:
        """Instantiate a fresh machine ready to run this workload.

        Args:
            num_cores: application cores the threads are pinned to
                (multithreaded workloads only; the default single core
                reproduces the classic dual-core LBA setup).
        """
        programs = self.build_programs()
        if self.multithreaded:
            return ThreadedMachine(programs, num_cores=num_cores)
        if len(programs) != 1:
            raise ValueError(f"single-threaded workload {self.name} built {len(programs)} programs")
        return Machine(programs[0])


def register_spec(cls: Type[Workload]) -> Type[Workload]:
    """Class decorator adding a workload to the SPEC registry."""
    SPEC_WORKLOADS[cls.name] = cls
    return cls


def register_multithreaded(cls: Type[Workload]) -> Type[Workload]:
    """Class decorator adding a workload to the multithreaded registry."""
    MULTITHREADED_WORKLOADS[cls.name] = cls
    return cls


def get_workload(name: str, scale: float = 1.0, threads: Optional[int] = None) -> Workload:
    """Instantiate a registered workload by name."""
    if name in SPEC_WORKLOADS:
        return SPEC_WORKLOADS[name](scale=scale, threads=threads)
    if name in MULTITHREADED_WORKLOADS:
        return MULTITHREADED_WORKLOADS[name](scale=scale, threads=threads)
    raise KeyError(f"unknown workload {name!r}")


def workload_names(multithreaded: bool = False) -> List[str]:
    """Names of the registered workloads of one kind, in registration order."""
    registry = MULTITHREADED_WORKLOADS if multithreaded else SPEC_WORKLOADS
    return list(registry)
