"""Workload abstraction and registry."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Sequence, Type, Union

from repro.isa.machine import Machine
from repro.isa.program import Program
from repro.isa.threads import ThreadedMachine

ApplicationMachine = Union[Machine, ThreadedMachine]

#: Registry of single-threaded (SPEC-analogue) workloads, keyed by name.
SPEC_WORKLOADS: Dict[str, Type["Workload"]] = {}
#: Registry of multithreaded (Table 3 analogue) workloads, keyed by name.
MULTITHREADED_WORKLOADS: Dict[str, Type["Workload"]] = {}


class Workload(ABC):
    """A runnable monitored program.

    Args:
        scale: multiplies loop trip counts / data sizes.  ``1.0`` corresponds
            to the "reduced input" sizes used by the simulation study
            (tens of thousands of dynamic instructions); experiments may
            scale up for the profiling study or down for fast unit tests.
    """

    #: workload name as it appears in figures (e.g. ``"bzip2"``)
    name: str = "workload"
    #: True for two-thread workloads (LOCKSET study)
    multithreaded: bool = False
    #: one-line description of what the synthetic program models
    description: str = ""

    def __init__(self, scale: float = 1.0) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale

    def iterations(self, base: int, minimum: int = 1) -> int:
        """Scale a loop trip count."""
        return max(minimum, int(base * self.scale))

    @abstractmethod
    def build_programs(self) -> List[Program]:
        """Build the program(s): one entry per application thread."""

    def build_machine(self) -> ApplicationMachine:
        """Instantiate a fresh machine ready to run this workload."""
        programs = self.build_programs()
        if self.multithreaded:
            return ThreadedMachine(programs)
        if len(programs) != 1:
            raise ValueError(f"single-threaded workload {self.name} built {len(programs)} programs")
        return Machine(programs[0])


def register_spec(cls: Type[Workload]) -> Type[Workload]:
    """Class decorator adding a workload to the SPEC registry."""
    SPEC_WORKLOADS[cls.name] = cls
    return cls


def register_multithreaded(cls: Type[Workload]) -> Type[Workload]:
    """Class decorator adding a workload to the multithreaded registry."""
    MULTITHREADED_WORKLOADS[cls.name] = cls
    return cls


def get_workload(name: str, scale: float = 1.0) -> Workload:
    """Instantiate a registered workload by name."""
    if name in SPEC_WORKLOADS:
        return SPEC_WORKLOADS[name](scale=scale)
    if name in MULTITHREADED_WORKLOADS:
        return MULTITHREADED_WORKLOADS[name](scale=scale)
    raise KeyError(f"unknown workload {name!r}")


def workload_names(multithreaded: bool = False) -> List[str]:
    """Names of the registered workloads of one kind, in registration order."""
    registry = MULTITHREADED_WORKLOADS if multithreaded else SPEC_WORKLOADS
    return list(registry)
