"""Buggy programs used to validate lifeguard detection (Table 1 semantics).

Each builder returns a program exhibiting exactly one class of bug so tests
can assert that the responsible lifeguard reports it (and that the other
lifeguards and configurations behave consistently).
"""

from __future__ import annotations

from typing import List

from repro.isa.instructions import Cond, Imm, Mem, Reg, SyscallKind
from repro.isa.program import Program, ProgramBuilder
from repro.isa.registers import Register
from repro.workloads.multithreaded import LOCK_RESULTS, SHARED_COUNTER
from repro.workloads.patterns import EAX, EBP, EBX, ECX, EDI, EDX, ESI, Patterns


def use_after_free() -> Program:
    """Read from a heap block after it has been freed (ADDRCHECK/MEMCHECK)."""
    b = ProgramBuilder("bug_use_after_free")
    p = Patterns(b)
    p.alloc(64, EBP)
    p.init_array(EBP, 16, start_value=1)
    p.free(EBP)
    b.mov(Reg(EBX), Mem(base=EBP))          # dangling read
    b.add(Reg(EDX), Reg(EBX))
    b.halt()
    return b.build()


def heap_overflow_write() -> Program:
    """Write one element past the end of a heap buffer (ADDRCHECK/MEMCHECK)."""
    b = ProgramBuilder("bug_heap_overflow")
    p = Patterns(b)
    p.alloc(64, EBP)
    p.init_array(EBP, 16, start_value=1)
    b.mov(Mem(base=EBP, disp=64), Imm(0xDEAD))   # one past the end
    p.free(EBP)
    b.halt()
    return b.build()


def double_free() -> Program:
    """Free the same heap block twice (ADDRCHECK/MEMCHECK)."""
    b = ProgramBuilder("bug_double_free")
    p = Patterns(b)
    p.alloc(64, EBP)
    p.init_array(EBP, 16, start_value=1)
    p.free(EBP)
    p.free(EBP)
    b.halt()
    return b.build()


def invalid_free() -> Program:
    """Free an address that was never returned by malloc (ADDRCHECK/MEMCHECK)."""
    b = ProgramBuilder("bug_invalid_free")
    p = Patterns(b)
    p.alloc(64, EBP)
    b.mov(Reg(EAX), Reg(EBP))
    b.add(Reg(EAX), Imm(8))                 # interior pointer
    b.free(Reg(EAX))
    p.free(EBP)
    b.halt()
    return b.build()


def memory_leak() -> Program:
    """Allocate a block and exit without freeing it (ADDRCHECK/MEMCHECK)."""
    b = ProgramBuilder("bug_memory_leak")
    p = Patterns(b)
    p.alloc(96, EBP)
    p.init_array(EBP, 24, start_value=1)
    b.mov(Reg(EDX), Imm(0))
    p.sum_array(EBP, 24)
    b.halt()                                 # no free
    return b.build()


def uninitialized_computation() -> Program:
    """Use an uninitialised heap value in arithmetic (MEMCHECK, eager variant)."""
    b = ProgramBuilder("bug_uninit_compute")
    p = Patterns(b)
    p.alloc(64, EBP)
    b.mov(Reg(EBX), Mem(base=EBP, disp=16))  # load of uninitialised word (no error yet)
    b.add(Reg(EDX), Reg(EBX))                # non-unary use -> error
    p.free(EBP)
    b.halt()
    return b.build()


def uninitialized_condition() -> Program:
    """Branch on an uninitialised heap value (MEMCHECK)."""
    b = ProgramBuilder("bug_uninit_branch")
    p = Patterns(b)
    p.alloc(64, EBP)
    b.mov(Reg(EBX), Mem(base=EBP, disp=4))
    b.cmp(Reg(EBX), Imm(0))
    b.jcc(Cond.EQ, "done")
    b.nop()
    b.label("done")
    p.free(EBP)
    b.halt()
    return b.build()


def uninitialized_pointer_dereference() -> Program:
    """Dereference a pointer loaded from uninitialised memory (MEMCHECK)."""
    b = ProgramBuilder("bug_uninit_pointer")
    p = Patterns(b)
    p.alloc(64, EBP)
    b.mov(Reg(ESI), Mem(base=EBP, disp=8))   # uninitialised "pointer"
    b.mov(Reg(EBX), Mem(base=ESI, disp=0x08100000))  # dereference (kept in-bounds via disp)
    p.free(EBP)
    b.halt()
    return b.build()


def harmless_uninitialized_copy() -> Program:
    """Copy an uninitialised struct field without using it (MEMCHECK must stay silent).

    This is the padded-struct case of Section 4.2: copying uninitialised data
    is not an error; only *using* it is.
    """
    b = ProgramBuilder("clean_uninit_copy")
    p = Patterns(b)
    p.alloc(64, EBP)
    p.alloc(64, EDI)
    b.mov(Reg(EBX), Mem(base=EBP, disp=12))  # load uninitialised padding
    b.mov(Mem(base=EDI, disp=12), Reg(EBX))  # store it elsewhere, never use it
    p.free(EBP)
    p.free(EDI)
    b.halt()
    return b.build()


# ---------------------------------------------------------------------------- races


def _racy_thread(name: str, thread_id: int, iterations: int, use_lock: bool) -> Program:
    b = ProgramBuilder(f"{name}_t{thread_id}")
    p = Patterns(b)
    b.mov(Reg(EDX), Imm(0))
    for _ in range(iterations):
        if use_lock:
            b.lock(Imm(LOCK_RESULTS))
        b.mov(Reg(EBX), Mem(disp=SHARED_COUNTER))
        b.add(Reg(EBX), Imm(1))
        b.mov(Mem(disp=SHARED_COUNTER), Reg(EBX))
        if use_lock:
            b.unlock(Imm(LOCK_RESULTS))
        # some private work between updates
        b.add(Reg(EDX), Imm(3))
        b.xor(Reg(EDX), Imm(0x11))
    b.halt()
    return b.build()


def racy_counter_programs(iterations: int = 12) -> List[Program]:
    """Two threads increment a shared counter without any lock (LOCKSET race)."""
    return [
        _racy_thread("bug_racy_counter", 0, iterations, use_lock=False),
        _racy_thread("bug_racy_counter", 1, iterations, use_lock=False),
    ]


def locked_counter_programs(iterations: int = 12) -> List[Program]:
    """Control case: the same counter updates, consistently lock-protected."""
    return [
        _racy_thread("clean_locked_counter", 0, iterations, use_lock=True),
        _racy_thread("clean_locked_counter", 1, iterations, use_lock=True),
    ]


def inconsistent_locking_programs(iterations: int = 10) -> List[Program]:
    """One thread uses the lock, the other does not (LOCKSET race)."""
    return [
        _racy_thread("bug_inconsistent_locking", 0, iterations, use_lock=True),
        _racy_thread("bug_inconsistent_locking", 1, iterations, use_lock=False),
    ]


#: Single-threaded bug builders keyed by name (used by tests and examples).
BUG_SCENARIOS = {
    "use_after_free": use_after_free,
    "heap_overflow_write": heap_overflow_write,
    "double_free": double_free,
    "invalid_free": invalid_free,
    "memory_leak": memory_leak,
    "uninitialized_computation": uninitialized_computation,
    "uninitialized_condition": uninitialized_condition,
    "uninitialized_pointer_dereference": uninitialized_pointer_dereference,
}
