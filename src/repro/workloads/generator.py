"""Seeded random program generator.

Used by property-based tests (and available to users for fuzzing their own
lifeguards): generates well-formed programs with a configurable instruction
mix whose memory accesses stay inside initialised, allocated buffers, so any
lifeguard report on a generated program indicates a framework bug rather
than a program bug.  Optionally a fraction of the input buffer can be filled
from a ``read`` system call so that taint is present and propagated.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.isa.instructions import Cond, Imm, Mem, Reg, SyscallKind
from repro.isa.program import Program, ProgramBuilder
from repro.isa.registers import Register
from repro.workloads.patterns import EAX, EBP, EBX, ECX, EDI, EDX, ESI, Patterns

#: registers the generator uses for arithmetic (pointers live in EBP/EDI)
_SCRATCH = (EAX, EBX, ECX, EDX)


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the random program generator."""

    operations: int = 200
    array_words: int = 64
    #: probability weights of each operation class
    weight_alu_reg: float = 0.25
    weight_alu_imm: float = 0.15
    weight_load: float = 0.2
    weight_store: float = 0.2
    weight_copy: float = 0.1
    weight_branch: float = 0.05
    weight_call: float = 0.05
    #: taint the input array via a read() system call
    with_tainted_input: bool = False

    def weights(self) -> List[float]:
        return [
            self.weight_alu_reg,
            self.weight_alu_imm,
            self.weight_load,
            self.weight_store,
            self.weight_copy,
            self.weight_branch,
            self.weight_call,
        ]


def generate_program(seed: int, config: Optional[GeneratorConfig] = None) -> Program:
    """Generate a deterministic random program for ``seed``."""
    config = config or GeneratorConfig()
    rng = random.Random(seed)
    b = ProgramBuilder(f"generated_{seed}")
    p = Patterns(b)

    words = config.array_words
    p.alloc(words * 4, EBP)      # array A (input)
    p.alloc(words * 4, EDI)      # array B (output)
    if config.with_tainted_input:
        p.read_input(EBP, words * 4, kind=SyscallKind.READ)
    else:
        p.init_array(EBP, words, start_value=seed % 97 + 1)
    # array B starts initialised as well so stores/loads may interleave freely
    p.init_array(EDI, words, start_value=3)
    # re-point ESI at A for the operation stream (init_array clobbered it)
    b.mov(Reg(ESI), Reg(EBP))
    b.mov(Reg(EDX), Imm(0))

    kinds = ["alu_reg", "alu_imm", "load", "store", "copy", "branch", "call"]
    uses_call = False
    for index in range(config.operations):
        kind = rng.choices(kinds, weights=config.weights())[0]
        offset = rng.randrange(words) * 4
        reg = rng.choice(_SCRATCH)
        other = rng.choice(_SCRATCH)
        if kind == "alu_reg":
            op = rng.choice([b.add, b.sub, b.xor, b.or_, b.and_])
            op(Reg(reg), Reg(other))
        elif kind == "alu_imm":
            op = rng.choice([b.add, b.sub, b.xor, b.and_])
            op(Reg(reg), Imm(rng.randrange(1, 1 << 16)))
        elif kind == "load":
            base = rng.choice([EBP, EDI])
            b.mov(Reg(reg), Mem(base=base, disp=offset))
        elif kind == "store":
            b.mov(Mem(base=EDI, disp=offset), Reg(reg))
        elif kind == "copy":
            src = rng.choice([EBP, EDI])
            b.mov(Reg(reg), Mem(base=src, disp=offset))
            b.mov(Mem(base=EDI, disp=rng.randrange(words) * 4), Reg(reg))
        elif kind == "branch":
            label = p.fresh_label("skip")
            b.cmp(Reg(reg), Imm(rng.randrange(0, 64)))
            b.jcc(rng.choice(list(Cond)), label)
            b.add(Reg(other), Imm(1))
            b.label(label)
        elif kind == "call":
            uses_call = True
            b.push(Reg(ECX))
            b.call("leaf")
            b.pop(Reg(ECX))
    p.free(EBP)
    p.free(EDI)
    b.halt()
    if uses_call:
        p.define_alu_leaf("leaf", alu_ops=6)
    else:
        # keep the label table stable so traces only differ by the op stream
        b.label("leaf")
        b.ret()
    return b.build()
