"""Seeded random program generator and differential-fuzzing front-end.

Used by property-based tests (and available to users for fuzzing their own
lifeguards): generates well-formed programs with a configurable instruction
mix whose memory accesses stay inside initialised, allocated buffers, so any
lifeguard report on a generated program indicates a framework bug rather
than a program bug.  Optionally a fraction of the input buffer can be filled
from a ``read`` system call so that taint is present and propagated.

Beyond the original single-threaded :func:`generate_program`, this module
provides the program fuzzer of ``repro.fuzz``:

* an **op-level intermediate representation** (:class:`Op`): each seed is
  first expanded into per-thread tuples of structured operations
  (:class:`FuzzProgramSpec`), then deterministically lowered to
  :class:`~repro.isa.program.Program` objects.  The IR is what the shrinker
  bisects and what repro files serialise -- removing ops and re-lowering
  always yields a well-formed program;
* **structural diversity knobs** (:class:`FuzzConfig`): instruction mix,
  thread count, malloc/free lifetimes, lock-protected cross-thread sharing,
  output system calls and tainted input;
* **bug injection**: a seed may plant exactly one known defect
  (use-after-free, out-of-bounds write, unlocked shared write,
  taint-to-jump, uninitialised read).  :func:`manifest_for` derives the
  machine-checkable ground truth -- which lifeguards must report which
  :class:`~repro.lifeguards.reports.ErrorKind` -- that the differential
  oracle asserts.

Every random decision is drawn from one ``random.Random(seed)`` stream and
lowering iterates only over lists/tuples, so a seed maps to bit-identical
programs on every Python version (pinned by the golden digest test).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.instructions import Cond, Imm, Mem, Reg, SyscallKind
from repro.isa.program import Program, ProgramBuilder
from repro.isa.registers import Register
from repro.workloads.patterns import EAX, EBP, EBX, ECX, EDI, EDX, ESI, Patterns

#: registers the generator uses for arithmetic (pointers live in EBP/EDI)
_SCRATCH = (EAX, EBX, ECX, EDX)


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the random program generator."""

    operations: int = 200
    array_words: int = 64
    #: probability weights of each operation class
    weight_alu_reg: float = 0.25
    weight_alu_imm: float = 0.15
    weight_load: float = 0.2
    weight_store: float = 0.2
    weight_copy: float = 0.1
    weight_branch: float = 0.05
    weight_call: float = 0.05
    #: taint the input array via a read() system call
    with_tainted_input: bool = False

    def weights(self) -> List[float]:
        return [
            self.weight_alu_reg,
            self.weight_alu_imm,
            self.weight_load,
            self.weight_store,
            self.weight_copy,
            self.weight_branch,
            self.weight_call,
        ]


def generate_program(seed: int, config: Optional[GeneratorConfig] = None) -> Program:
    """Generate a deterministic random program for ``seed``."""
    config = config or GeneratorConfig()
    rng = random.Random(seed)
    b = ProgramBuilder(f"generated_{seed}")
    p = Patterns(b)

    words = config.array_words
    p.alloc(words * 4, EBP)      # array A (input)
    p.alloc(words * 4, EDI)      # array B (output)
    if config.with_tainted_input:
        p.read_input(EBP, words * 4, kind=SyscallKind.READ)
    else:
        p.init_array(EBP, words, start_value=seed % 97 + 1)
    # array B starts initialised as well so stores/loads may interleave freely
    p.init_array(EDI, words, start_value=3)
    # re-point ESI at A for the operation stream (init_array clobbered it)
    b.mov(Reg(ESI), Reg(EBP))
    b.mov(Reg(EDX), Imm(0))

    kinds = ["alu_reg", "alu_imm", "load", "store", "copy", "branch", "call"]
    uses_call = False
    for index in range(config.operations):
        kind = rng.choices(kinds, weights=config.weights())[0]
        offset = rng.randrange(words) * 4
        reg = rng.choice(_SCRATCH)
        other = rng.choice(_SCRATCH)
        if kind == "alu_reg":
            op = rng.choice([b.add, b.sub, b.xor, b.or_, b.and_])
            op(Reg(reg), Reg(other))
        elif kind == "alu_imm":
            op = rng.choice([b.add, b.sub, b.xor, b.and_])
            op(Reg(reg), Imm(rng.randrange(1, 1 << 16)))
        elif kind == "load":
            base = rng.choice([EBP, EDI])
            b.mov(Reg(reg), Mem(base=base, disp=offset))
        elif kind == "store":
            b.mov(Mem(base=EDI, disp=offset), Reg(reg))
        elif kind == "copy":
            src = rng.choice([EBP, EDI])
            b.mov(Reg(reg), Mem(base=src, disp=offset))
            b.mov(Mem(base=EDI, disp=rng.randrange(words) * 4), Reg(reg))
        elif kind == "branch":
            label = p.fresh_label("skip")
            b.cmp(Reg(reg), Imm(rng.randrange(0, 64)))
            b.jcc(rng.choice(list(Cond)), label)
            b.add(Reg(other), Imm(1))
            b.label(label)
        elif kind == "call":
            uses_call = True
            b.push(Reg(ECX))
            b.call("leaf")
            b.pop(Reg(ECX))
    p.free(EBP)
    p.free(EDI)
    b.halt()
    if uses_call:
        p.define_alu_leaf("leaf", alu_ops=6)
    else:
        # keep the label table stable so traces only differ by the op stream
        b.label("leaf")
        b.ret()
    return b.build()


# ============================================================================
# Differential-fuzzing program generator (op IR, lowering, bug injection)
# ============================================================================

#: Per-thread pointer slots in the global data segment.  Lowered code keeps
#: long-lived heap pointers (the syscall buffer) in globals instead of
#: registers so the op stream may clobber every scratch register freely.
FUZZ_SLOT_BASE = 0x0814_0000
#: Lock-protected words shared by every thread of a fuzzed program.
FUZZ_SHARED_BASE = 0x0815_0000
FUZZ_SHARED_WORDS = 4
#: The single lock protecting every shared word (uniform discipline keeps
#: clean seeds race-free by construction).
FUZZ_LOCK = 0x0813_00C0
#: Words in the per-thread syscall (output) buffer.  It is initialised in
#: the prologue and only ever written with immediates afterwards, so it is
#: always fully initialised and never tainted -- the one buffer that can be
#: passed to output system calls without tripping any lifeguard.
FUZZ_SYSCALL_WORDS = 16

#: Injectable defect classes (`FuzzConfig.bug` / seed profiles).
BUG_CLASSES = (
    "use_after_free",
    "overflow",
    "unlocked_shared_write",
    "taint_to_jump",
    "uninitialized_read",
)

#: Op kinds the mixer draws from, with their default weights.
_OP_KINDS = (
    ("alu_reg", 0.16),
    ("alu_imm", 0.10),
    ("load", 0.14),
    ("store", 0.12),
    ("store_imm", 0.06),
    ("copy", 0.10),
    ("block_copy", 0.06),
    ("branch", 0.08),
    ("call", 0.05),
    ("scratch_block", 0.06),
    ("shared_rmw", 0.04),
    ("syscall_out", 0.03),
)


def _syscall_slot(thread_id: int) -> int:
    """Global slot holding thread ``thread_id``'s syscall-buffer pointer."""
    return FUZZ_SLOT_BASE + thread_id * 64


@dataclass(frozen=True)
class Op:
    """One structured operation of the fuzz IR.

    ``kind`` selects the lowering template; ``a``/``b``/``c`` are small
    integer parameters whose meaning depends on the kind (register index,
    word offset, immediate, condition selector).  Keeping the fields plain
    integers makes specs trivially JSON-serialisable for repro files.
    """

    kind: str
    a: int = 0
    b: int = 0
    c: int = 0


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs of the fuzz-program generator."""

    operations: int = 40
    array_words: int = 16
    threads: int = 1
    tainted_input: bool = False
    #: defect class to inject ("" = clean seed)
    bug: str = ""
    #: multiplicative jitter applied to the op-mix weights (0 disables)
    weight_jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.operations < 0:
            raise ValueError("operations must be >= 0")
        if self.array_words < 4:
            raise ValueError("array_words must be >= 4")
        if self.threads < 1:
            raise ValueError("threads must be >= 1")
        if self.bug and self.bug not in BUG_CLASSES:
            raise ValueError(f"unknown bug class {self.bug!r}; known: {BUG_CLASSES}")
        if self.bug == "unlocked_shared_write" and self.threads < 2:
            raise ValueError("unlocked_shared_write needs >= 2 threads")
        if self.bug == "taint_to_jump" and not self.tainted_input:
            raise ValueError("taint_to_jump needs tainted_input=True")


@dataclass(frozen=True)
class FuzzProgramSpec:
    """A fully expanded fuzz case: per-thread op tuples plus scenario facts.

    The spec -- not the lowered programs -- is the unit of shrinking and
    repro serialisation: dropping ops from ``ops`` and re-lowering always
    produces a well-formed program with the same prologue/epilogue.
    """

    seed: int
    threads: int
    array_words: int
    tainted_input: bool
    bug: str
    bug_thread: int
    ops: Tuple[Tuple[Op, ...], ...]

    def total_ops(self) -> int:
        """Number of IR ops across all threads (shrinking progress metric)."""
        return sum(len(thread_ops) for thread_ops in self.ops)

    # ------------------------------------------------------------------ serialisation

    def to_dict(self) -> Dict:
        """JSON-ready dictionary (inverse of :meth:`from_dict`)."""
        return {
            "seed": self.seed,
            "threads": self.threads,
            "array_words": self.array_words,
            "tainted_input": self.tainted_input,
            "bug": self.bug,
            "bug_thread": self.bug_thread,
            "ops": [
                [[op.kind, op.a, op.b, op.c] for op in thread_ops]
                for thread_ops in self.ops
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FuzzProgramSpec":
        """Rebuild a spec from :meth:`to_dict` output (repro files)."""
        return cls(
            seed=int(data["seed"]),
            threads=int(data["threads"]),
            array_words=int(data["array_words"]),
            tainted_input=bool(data["tainted_input"]),
            bug=str(data["bug"]),
            bug_thread=int(data["bug_thread"]),
            ops=tuple(
                tuple(Op(kind, int(a), int(b), int(c)) for kind, a, b, c in thread_ops)
                for thread_ops in data["ops"]
            ),
        )


@dataclass(frozen=True)
class BugManifest:
    """Machine-checkable ground truth for one fuzz case.

    ``detectors`` are the lifeguards that must report at least one error of
    a kind in ``kinds``; a clean manifest (``bug == ""``) asserts that
    *every* lifeguard stays completely silent.  ``shard_exact`` records
    whether detection survives address-sharded multi-core monitoring
    (register-inheritance-dependent bugs may be missed when the
    establishing access and the erring use route to different shards);
    ``halts_early`` marks bugs whose injected instruction wild-jumps, so
    the program halts mid-run and e.g. leak reports from skipped frees are
    expected from non-matching lifeguards.
    """

    bug: str = ""
    thread: int = 0
    detectors: Tuple[str, ...] = ()
    kinds: Tuple[str, ...] = ()
    shard_exact: bool = True
    halts_early: bool = False

    @property
    def is_clean(self) -> bool:
        return not self.bug


#: bug class -> (detecting lifeguards, acceptable ErrorKind values,
#:               shard-exact under address sharding, halts the thread early)
_BUG_GROUND_TRUTH = {
    "use_after_free": (("AddrCheck", "MemCheck"), ("invalid_access",), True, False),
    "overflow": (("AddrCheck", "MemCheck"), ("invalid_access",), True, False),
    "unlocked_shared_write": (("LockSet",), ("data_race",), True, False),
    "taint_to_jump": (
        ("TaintCheck", "TaintCheckDetailed"),
        ("taint_violation",),
        False,
        True,
    ),
    "uninitialized_read": (("MemCheck",), ("uninitialized_use",), False, False),
}


def manifest_for(spec: FuzzProgramSpec) -> BugManifest:
    """Derive the ground-truth manifest of a spec (pure, shrink-stable)."""
    if not spec.bug:
        return BugManifest()
    detectors, kinds, shard_exact, halts = _BUG_GROUND_TRUTH[spec.bug]
    return BugManifest(
        bug=spec.bug,
        thread=spec.bug_thread,
        detectors=detectors,
        kinds=kinds,
        shard_exact=shard_exact,
        halts_early=halts,
    )


# ------------------------------------------------------------------ generation


def profile_for_seed(seed: int) -> FuzzConfig:
    """Deterministic seed -> scenario mapping used by the fuzz CLI and CI.

    Every block of eight consecutive seeds covers three clean shapes
    (single-threaded, multithreaded, multithreaded+taint) and all five
    injected bug classes, so any contiguous seed range of length >= 8
    exercises the full detection matrix.
    """
    scenario = seed % 8
    variant = seed // 8
    threads = 2 + variant % 2
    if scenario == 0:
        return FuzzConfig(threads=1)
    if scenario == 1:
        return FuzzConfig(threads=threads)
    if scenario == 2:
        return FuzzConfig(threads=threads, tainted_input=True)
    bug = BUG_CLASSES[scenario - 3]
    return FuzzConfig(
        threads=max(threads, 2) if bug == "unlocked_shared_write" else (1 + variant % 2),
        tainted_input=(bug == "taint_to_jump") or (variant % 3 == 1),
        bug=bug,
    )


def _draw_op(rng: random.Random, kinds: Sequence[str], weights: Sequence[float],
             config: FuzzConfig) -> Op:
    """Draw one IR op; every parameter comes from the seeded stream."""
    kind = rng.choices(kinds, weights=weights)[0]
    words = config.array_words
    if kind == "alu_reg":
        return Op(kind, rng.randrange(4), rng.randrange(4), rng.randrange(5))
    if kind == "alu_imm":
        return Op(kind, rng.randrange(4), rng.randrange(1, 1 << 16), rng.randrange(4))
    if kind == "load":
        return Op(kind, rng.randrange(4), rng.randrange(words), rng.randrange(2))
    if kind == "store":
        return Op(kind, rng.randrange(4), rng.randrange(words))
    if kind == "store_imm":
        return Op(kind, rng.randrange(1, 1 << 16), rng.randrange(words))
    if kind == "copy":
        return Op(kind, rng.randrange(4), rng.randrange(words), rng.randrange(words))
    if kind == "block_copy":
        span = rng.randrange(1, 5)
        return Op(
            kind,
            rng.randrange(max(1, words - span)),
            rng.randrange(max(1, words - span)),
            span,
        )
    if kind == "branch":
        return Op(kind, rng.randrange(4), rng.randrange(64), rng.randrange(len(Cond)))
    if kind == "call":
        return Op(kind)
    if kind == "scratch_block":
        return Op(kind, rng.randrange(4), rng.randrange(1, 50), rng.randrange(8))
    if kind == "shared_rmw":
        return Op(kind, rng.randrange(FUZZ_SHARED_WORDS), rng.randrange(1, 4))
    if kind == "syscall_out":
        return Op(
            kind,
            rng.randrange(FUZZ_SYSCALL_WORDS),
            rng.randrange(1, 1 << 16),
            rng.randrange(FUZZ_SYSCALL_WORDS),
        )
    raise AssertionError(f"unhandled op kind {kind!r}")


def generate_spec(seed: int, config: Optional[FuzzConfig] = None) -> FuzzProgramSpec:
    """Expand ``seed`` into a :class:`FuzzProgramSpec`.

    Without an explicit config the scenario comes from
    :func:`profile_for_seed`.  All randomness -- op mix jitter, op
    parameters, bug placement -- is drawn from one ``random.Random(seed)``
    stream in a fixed order, so the spec is a pure function of
    ``(seed, config)`` on every Python version.
    """
    config = config or profile_for_seed(seed)
    rng = random.Random(seed)
    kinds = [kind for kind, _weight in _OP_KINDS]
    weights = [weight for _kind, weight in _OP_KINDS]
    if config.weight_jitter:
        weights = [
            weight * (1.0 + config.weight_jitter * rng.random()) for weight in weights
        ]
    ops: List[List[Op]] = []
    for _thread in range(config.threads):
        ops.append(
            [_draw_op(rng, kinds, weights, config) for _ in range(config.operations)]
        )
    bug_thread = 0
    if config.bug:
        bug_thread = rng.randrange(config.threads)
        bug_op = Op(f"bug_{config.bug}", rng.randrange(4), rng.randrange(4))
        if config.bug == "taint_to_jump":
            # The wild jump halts the thread: keep the injected op last so
            # the shrunk-to-minimal program is still representative.
            ops[bug_thread].append(bug_op)
        else:
            position = rng.randrange(len(ops[bug_thread]) + 1)
            ops[bug_thread].insert(position, bug_op)
    return FuzzProgramSpec(
        seed=seed,
        threads=config.threads,
        array_words=config.array_words,
        tainted_input=config.tainted_input,
        bug=config.bug,
        bug_thread=bug_thread,
        ops=tuple(tuple(thread_ops) for thread_ops in ops),
    )


# ------------------------------------------------------------------ lowering


def _emit_prologue(b: ProgramBuilder, p: Patterns, spec: FuzzProgramSpec,
                   thread_id: int) -> None:
    words = spec.array_words
    # Touch the shared counter under the lock *first*: every thread
    # establishes its lock-protected access within its first scheduling
    # quantum, so an injected unlocked write later always finds the word
    # already shared (the race fires deterministically).
    _emit_locked_rmw(b, 0)
    p.alloc(words * 4, EBP)                       # array A (input)
    p.alloc(words * 4, EDI)                       # array B (output)
    b.malloc(Imm(FUZZ_SYSCALL_WORDS * 4))         # syscall buffer S
    b.mov(Mem(disp=_syscall_slot(thread_id)), Reg(EAX))
    if spec.tainted_input:
        b.syscall(SyscallKind.READ, Reg(EBP), Imm(words * 4))
    else:
        p.init_array(EBP, words, start_value=spec.seed % 97 + 1)
    p.init_array(EDI, words, start_value=3)
    b.mov(Reg(ESI), Mem(disp=_syscall_slot(thread_id)))
    p.init_array(ESI, FUZZ_SYSCALL_WORDS, start_value=7)


def _emit_epilogue(b: ProgramBuilder, p: Patterns, spec: FuzzProgramSpec,
                   thread_id: int, uses_call: bool) -> None:
    _emit_locked_rmw(b, 0)
    b.mov(Reg(ESI), Mem(disp=_syscall_slot(thread_id)))
    b.free(Reg(ESI))
    p.free(EDI)
    p.free(EBP)
    b.halt()
    if uses_call:
        p.define_alu_leaf("leaf", alu_ops=6)
    else:
        # keep the label table stable so shrinking never invalidates calls
        b.label("leaf")
        b.ret()


def _emit_locked_rmw(b: ProgramBuilder, word_index: int, increment: int = 1) -> None:
    """Lock-protected read-modify-write of a shared global word."""
    word = FUZZ_SHARED_BASE + (word_index % FUZZ_SHARED_WORDS) * 4
    b.lock(Imm(FUZZ_LOCK))
    b.mov(Reg(EBX), Mem(disp=word))
    b.add(Reg(EBX), Imm(increment))
    b.mov(Mem(disp=word), Reg(EBX))
    b.unlock(Imm(FUZZ_LOCK))


def _emit_op(b: ProgramBuilder, p: Patterns, spec: FuzzProgramSpec,
             thread_id: int, op: Op) -> None:
    words = spec.array_words
    if op.kind == "alu_reg":
        alu = (b.add, b.sub, b.xor, b.or_, b.and_)[op.c % 5]
        alu(Reg(_SCRATCH[op.a % 4]), Reg(_SCRATCH[op.b % 4]))
    elif op.kind == "alu_imm":
        alu = (b.add, b.sub, b.xor, b.and_)[op.c % 4]
        alu(Reg(_SCRATCH[op.a % 4]), Imm(op.b))
    elif op.kind == "load":
        base = EBP if op.c % 2 == 0 else EDI
        b.mov(Reg(_SCRATCH[op.a % 4]), Mem(base=base, disp=(op.b % words) * 4))
    elif op.kind == "store":
        b.mov(Mem(base=EDI, disp=(op.b % words) * 4), Reg(_SCRATCH[op.a % 4]))
    elif op.kind == "store_imm":
        b.mov(Mem(base=EDI, disp=(op.b % words) * 4), Imm(op.a))
    elif op.kind == "copy":
        reg = _SCRATCH[op.a % 4]
        b.mov(Reg(reg), Mem(base=EBP, disp=(op.b % words) * 4))
        b.mov(Mem(base=EDI, disp=(op.c % words) * 4), Reg(reg))
    elif op.kind == "block_copy":
        span = max(1, op.c % 5)
        src = min(op.a, max(0, words - span)) * 4
        dst = min(op.b, max(0, words - span)) * 4
        b.push(Reg(EDI))
        b.lea(Reg(ESI), Mem(base=EBP, disp=src))
        b.lea(Reg(EDI), Mem(base=EDI, disp=dst))
        b.movs(span * 4)
        b.pop(Reg(EDI))
    elif op.kind == "branch":
        label = p.fresh_label("skip")
        b.cmp(Reg(_SCRATCH[op.a % 4]), Imm(op.b % 64))
        b.jcc(list(Cond)[op.c % len(Cond)], label)
        b.add(Reg(_SCRATCH[(op.a + 1) % 4]), Imm(1))
        b.label(label)
    elif op.kind == "call":
        b.push(Reg(ECX))
        b.call("leaf")
        b.pop(Reg(ECX))
    elif op.kind == "scratch_block":
        # A full malloc/init/use/free lifetime confined to one op.
        block_words = 4 + (op.a % 4) * 2
        b.malloc(Imm(block_words * 4))
        p.init_array(EAX, block_words, start_value=op.b % 50 + 1)
        b.mov(Reg(EBX), Mem(base=EAX, disp=(op.c % block_words) * 4))
        b.add(Reg(ECX), Reg(EBX))
        b.free(Reg(EAX))
    elif op.kind == "shared_rmw":
        _emit_locked_rmw(b, op.a, increment=max(1, op.b % 4))
    elif op.kind == "syscall_out":
        slot = _syscall_slot(thread_id)
        b.mov(Reg(ESI), Mem(disp=slot))
        b.mov(Mem(base=ESI, disp=(op.a % FUZZ_SYSCALL_WORDS) * 4), Imm(op.b))
        length = ((op.c % FUZZ_SYSCALL_WORDS) + 1) * 4
        b.syscall(SyscallKind.WRITE, Reg(ESI), Imm(length))
    elif op.kind == "bug_use_after_free":
        # The dangling read targets the *tail* word of a 1 MiB block: the
        # first-fit allocator reuses hole starts, so even if another thread
        # mallocs between the free and the read (quantum boundary), the tail
        # stays unallocated and the invalid access fires deterministically.
        b.malloc(Imm(1 << 20))
        b.mov(Reg(ESI), Reg(EAX))
        b.mov(Mem(base=ESI), Imm(1))
        b.free(Reg(ESI))
        b.mov(Reg(EBX), Mem(base=ESI, disp=(1 << 20) - 4))  # dangling read
        b.add(Reg(EBX), Imm(1))
    elif op.kind == "bug_overflow":
        b.malloc(Imm(32))
        p.init_array(EAX, 8, start_value=1)
        b.mov(Mem(base=EAX, disp=32), Imm(0xDEAD))            # one past the end
        b.mov(Mem(base=EAX, disp=32 + (1 << 20)), Imm(0xBEEF))  # far OOB: always unallocated
        b.free(Reg(EAX))
    elif op.kind == "bug_unlocked_shared_write":
        word = FUZZ_SHARED_BASE
        b.mov(Reg(EBX), Mem(disp=word))          # no lock held
        b.add(Reg(EBX), Imm(1))
        b.mov(Mem(disp=word), Reg(EBX))
    elif op.kind == "bug_taint_to_jump":
        b.mov(Reg(EBX), Mem(base=EBP, disp=(op.a % words) * 4))  # tainted load
        b.jmp_indirect(Reg(EBX))                 # tainted control transfer (wild)
    elif op.kind == "bug_uninitialized_read":
        b.malloc(Imm(32))
        b.mov(Reg(ESI), Reg(EAX))
        b.mov(Reg(EBX), Mem(base=ESI, disp=8))   # uninitialised load (no error yet)
        b.add(Reg(ECX), Reg(EBX))                # non-unary use -> error
        b.free(Reg(ESI))
    else:
        raise ValueError(f"unknown op kind {op.kind!r}")


def _lower_thread(spec: FuzzProgramSpec, thread_id: int) -> Program:
    b = ProgramBuilder(f"fuzz_{spec.seed}_t{thread_id}")
    p = Patterns(b)
    _emit_prologue(b, p, spec, thread_id)
    uses_call = False
    for op in spec.ops[thread_id]:
        if op.kind == "call":
            uses_call = True
        _emit_op(b, p, spec, thread_id, op)
    _emit_epilogue(b, p, spec, thread_id, uses_call)
    return b.build()


def build_fuzz_programs(spec: FuzzProgramSpec) -> List[Program]:
    """Lower a spec to one :class:`Program` per thread (deterministic)."""
    return [_lower_thread(spec, thread_id) for thread_id in range(spec.threads)]


def generate_fuzz_programs(seed: int, config: Optional[FuzzConfig] = None) -> List[Program]:
    """Convenience: :func:`generate_spec` + :func:`build_fuzz_programs`."""
    return build_fuzz_programs(generate_spec(seed, config))


# ------------------------------------------------------------------ digests


def program_digest(programs: Sequence[Program]) -> str:
    """SHA-256 over the fully lowered instruction streams.

    The digest covers opcodes, operands, labels and branch targets of every
    thread program, so *any* change to what a seed generates -- from a new
    Python version, a refactor, or an accidental source of nondeterminism --
    changes the digest.  Golden digests for fixed seeds are pinned in the
    test suite.
    """
    h = hashlib.sha256()
    for program in programs:
        h.update(program.name.encode())
        h.update(str(program.code_base).encode())
        for instruction in program.instructions:
            h.update(repr(instruction).encode())
            h.update(b"\n")
    return h.hexdigest()


def spec_digest(spec: FuzzProgramSpec) -> str:
    """SHA-256 of the lowered programs of ``spec``."""
    return program_digest(build_fuzz_programs(spec))
