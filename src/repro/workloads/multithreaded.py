"""Multithreaded workloads for the LOCKSET study (Table 3 analogues).

Each workload models the sharing pattern of one of the paper's five
multithreaded benchmarks with two worker threads by default (the paper pins
both to the application core; here they are interleaved deterministically by
:class:`repro.isa.threads.ThreadedMachine`).  Every sharing pattern
generalises to N workers via the ``threads`` constructor argument, which the
multi-core platform uses to spread real interleaved work across application
cores.  Shared data and locks live at
fixed addresses in the global-data segment so that both thread programs can
name them; private working memory is heap-allocated per thread.

All of these programs are data-race-free: shared mutable state is always
accessed under a lock, read-only shared state is never written, and
per-thread partitions are disjoint.  The racy variants used to validate
LOCKSET's detection live in :mod:`repro.workloads.bugs`.
"""

from __future__ import annotations

from typing import List

from repro.isa.instructions import Cond, Imm, Mem, Reg
from repro.isa.program import Program, ProgramBuilder
from repro.isa.registers import Register
from repro.workloads.base import Workload, register_multithreaded
from repro.workloads.patterns import EAX, EBP, EBX, ECX, EDI, EDX, ESI, Patterns

#: Fixed global-segment addresses shared by both threads.
SHARED_DB_BASE = 0x0810_0000        # read-only shared table
SHARED_COUNTER = 0x0811_0000        # lock-protected shared counter
SHARED_QUEUE_INDEX = 0x0811_0010    # lock-protected work-queue cursor
SHARED_ARRAY_BASE = 0x0812_0000     # partitioned shared array (water)
LOCK_RESULTS = 0x0813_0000
LOCK_QUEUE = 0x0813_0040
LOCK_ENERGY = 0x0813_0080


def _locked_counter_update(p: Patterns, lock_addr: int, counter_addr: int,
                           increment: int = 1) -> None:
    """Emit ``lock; counter += increment; unlock`` on a shared global counter."""
    b = p.b
    b.lock(Imm(lock_addr))
    b.mov(Reg(EBX), Mem(disp=counter_addr))
    b.add(Reg(EBX), Imm(increment))
    b.mov(Mem(disp=counter_addr), Reg(EBX))
    b.unlock(Imm(lock_addr))


@register_multithreaded
class Blast(Workload):
    """blast: parallel database scan -- read-only sharing plus a locked hit count."""

    name = "blast"
    multithreaded = True
    description = "Both threads scan a shared read-only table; hits counted under a lock."

    def _thread_program(self, thread_id: int) -> Program:
        queries = self.iterations(10)
        db_words = 96
        b = ProgramBuilder(f"{self.name}_t{thread_id}")
        p = Patterns(b)
        b.mov(Reg(EDX), Imm(0))
        for _ in range(queries):
            # scan the shared read-only database
            loop = p.fresh_label("scan")
            b.mov(Reg(ESI), Imm(SHARED_DB_BASE))
            b.mov(Reg(ECX), Imm(db_words))
            b.label(loop)
            b.mov(Reg(EBX), Mem(base=ESI))
            b.add(Reg(EDX), Reg(EBX))
            b.add(Reg(ESI), Imm(4))
            b.sub(Reg(ECX), Imm(1))
            b.cmp(Reg(ECX), Imm(0))
            b.jcc(Cond.NE, loop)
            # record the result under the results lock
            _locked_counter_update(p, LOCK_RESULTS, SHARED_COUNTER)
        b.halt()
        return b.build()

    def build_programs(self) -> List[Program]:
        return [self._thread_program(t) for t in range(self.num_threads)]


@register_multithreaded
class Pbzip2(Workload):
    """pbzip2: parallel compression over a lock-protected work queue."""

    name = "pbzip2"
    multithreaded = True
    description = "Threads pull block indices from a locked queue and compress privately."

    block_words = 96
    transform = True

    def _thread_program(self, thread_id: int) -> Program:
        blocks_per_thread = self.iterations(6)
        b = ProgramBuilder(f"{self.name}_t{thread_id}")
        p = Patterns(b)
        b.mov(Reg(EDX), Imm(0))
        for _ in range(blocks_per_thread):
            # take the next block index from the shared queue
            b.lock(Imm(LOCK_QUEUE))
            b.mov(Reg(EBX), Mem(disp=SHARED_QUEUE_INDEX))
            b.add(Reg(EBX), Imm(1))
            b.mov(Mem(disp=SHARED_QUEUE_INDEX), Reg(EBX))
            b.unlock(Imm(LOCK_QUEUE))
            # compress the block into private buffers
            p.alloc(self.block_words * 4, EBP)
            p.alloc(self.block_words * 4, EDI)
            b.push(Reg(EDI))
            p.init_array(EBP, self.block_words, start_value=thread_id + 1)
            p.copy_array(EBP, EDI, self.block_words, transform=self.transform)
            b.pop(Reg(EDI))
            p.free(EBP)
            p.free(EDI)
            # publish completion under the results lock
            _locked_counter_update(p, LOCK_RESULTS, SHARED_COUNTER)
        b.halt()
        return b.build()

    def build_programs(self) -> List[Program]:
        return [self._thread_program(t) for t in range(self.num_threads)]


@register_multithreaded
class Pbunzip2(Pbzip2):
    """pbunzip2: parallel decompression (larger blocks, plain copies)."""

    name = "pbunzip2"
    multithreaded = True
    description = "Like pbzip2 but with larger output blocks and untransformed copies."

    block_words = 128
    transform = False


@register_multithreaded
class WaterNq(Workload):
    """water-nq: molecular dynamics -- partitioned shared array plus locked reduction."""

    name = "water_nq"
    multithreaded = True
    description = "Each thread updates its half of a shared array; energy summed under a lock."

    def _thread_program(self, thread_id: int) -> Program:
        molecules = 128
        half = max(1, molecules // self.num_threads)
        steps = self.iterations(8)
        base = SHARED_ARRAY_BASE + thread_id * half * 4
        b = ProgramBuilder(f"{self.name}_t{thread_id}")
        p = Patterns(b)
        b.mov(Reg(EDX), Imm(0))
        for _ in range(steps):
            # update this thread's partition in place (disjoint, no lock needed)
            loop = p.fresh_label("force")
            b.mov(Reg(ESI), Imm(base))
            b.mov(Reg(ECX), Imm(half))
            b.label(loop)
            b.mov(Reg(EBX), Mem(base=ESI))
            b.mul(Reg(EBX), Imm(3))
            b.add(Reg(EBX), Imm(7))
            b.mov(Mem(base=ESI), Reg(EBX))
            b.add(Reg(EDX), Reg(EBX))
            b.add(Reg(ESI), Imm(4))
            b.sub(Reg(ECX), Imm(1))
            b.cmp(Reg(ECX), Imm(0))
            b.jcc(Cond.NE, loop)
            # accumulate global energy under the energy lock
            _locked_counter_update(p, LOCK_ENERGY, SHARED_COUNTER, increment=1)
        b.halt()
        return b.build()

    def build_programs(self) -> List[Program]:
        return [self._thread_program(t) for t in range(self.num_threads)]


@register_multithreaded
class Zchaff(Workload):
    """zchaff: SAT solver -- shared read-only assignment, locked conflict counter."""

    name = "zchaff"
    multithreaded = True
    description = "Threads evaluate private clause sets against a shared read-only assignment."

    def _thread_program(self, thread_id: int) -> Program:
        clauses = self.iterations(18)
        clause_words = 24
        assignment_words = 64
        b = ProgramBuilder(f"{self.name}_t{thread_id}")
        p = Patterns(b)
        b.mov(Reg(EDX), Imm(0))
        for c in range(clauses):
            # private clause scratch space
            p.alloc(clause_words * 4, EBP)
            p.init_array(EBP, clause_words, start_value=c + thread_id)
            # evaluate the clause against the shared (read-only) assignment
            loop = p.fresh_label("eval")
            b.mov(Reg(ESI), Imm(SHARED_DB_BASE))
            b.mov(Reg(EDI), Reg(EBP))
            b.mov(Reg(ECX), Imm(min(clause_words, assignment_words)))
            b.label(loop)
            b.mov(Reg(EBX), Mem(base=ESI))
            b.add(Reg(EBX), Mem(base=EDI))
            b.add(Reg(EDX), Reg(EBX))
            b.add(Reg(ESI), Imm(4))
            b.add(Reg(EDI), Imm(4))
            b.sub(Reg(ECX), Imm(1))
            b.cmp(Reg(ECX), Imm(0))
            b.jcc(Cond.NE, loop)
            p.free(EBP)
            # record a conflict under the results lock every few clauses
            if c % 3 == 0:
                _locked_counter_update(p, LOCK_RESULTS, SHARED_COUNTER)
        b.halt()
        return b.build()

    def build_programs(self) -> List[Program]:
        return [self._thread_program(t) for t in range(self.num_threads)]
