"""Reusable code-generation patterns shared by the synthetic workloads.

Each pattern emits a small idiom (array initialisation, reduction, copy
loop, pointer chase, hash update, linear-congruential "random" step, leaf
function call) into a :class:`repro.isa.program.ProgramBuilder`.  The SPEC
and multithreaded analogues compose these blocks with different parameters
to obtain their characteristic instruction mixes and memory behaviour.

All patterns are careful to *write memory before reading it* so that clean
workloads do not trigger MEMCHECK uninitialised-value reports, and to keep
every access inside allocated blocks so ADDRCHECK stays quiet; the
deliberately buggy programs live in :mod:`repro.workloads.bugs` instead.
"""

from __future__ import annotations

from typing import Optional

from repro.isa.instructions import Cond, Imm, Mem, Reg, SyscallKind
from repro.isa.program import ProgramBuilder
from repro.isa.registers import Register

# Short aliases for readability of the generated code.
EAX, EBX, ECX, EDX = Register.EAX, Register.EBX, Register.ECX, Register.EDX
ESI, EDI, EBP, ESP = Register.ESI, Register.EDI, Register.EBP, Register.ESP


class Patterns:
    """Pattern emitter bound to one :class:`ProgramBuilder`."""

    def __init__(self, builder: ProgramBuilder) -> None:
        self.b = builder
        self._label_counter = 0

    def fresh_label(self, stem: str) -> str:
        """A unique label derived from ``stem``."""
        self._label_counter += 1
        return f"{stem}_{self._label_counter}"

    # ------------------------------------------------------------------ allocation

    def alloc(self, size: int, dest: Register) -> None:
        """``dest = malloc(size)``"""
        self.b.malloc(Imm(size))
        if dest is not EAX:
            self.b.mov(Reg(dest), Reg(EAX))

    def free(self, reg: Register) -> None:
        """``free(reg)``"""
        self.b.free(Reg(reg))

    def read_input(self, buffer_reg: Register, length: int,
                   kind: SyscallKind = SyscallKind.READ) -> None:
        """Fill ``length`` bytes at ``[buffer_reg]`` from an input system call."""
        self.b.syscall(kind, Reg(buffer_reg), Imm(length))

    # ------------------------------------------------------------------ array loops

    def init_array(self, base: Register, words: int, start_value: int = 1,
                   stride: int = 4) -> None:
        """Store ``start_value + i`` into ``words`` consecutive words at ``[base]``.

        Clobbers ESI, ECX and EBX.
        """
        loop = self.fresh_label("init")
        self.b.mov(Reg(ESI), Reg(base))
        self.b.mov(Reg(ECX), Imm(words))
        self.b.mov(Reg(EBX), Imm(start_value))
        self.b.label(loop)
        self.b.mov(Mem(base=ESI), Reg(EBX))
        # spill/reload of the loop-carried value models compiler-generated
        # stack-local traffic (ubiquitous in real IA32 code)
        self.b.mov(Mem(base=ESP, disp=-8), Reg(EBX))
        self.b.mov(Reg(EBX), Mem(base=ESP, disp=-8))
        self.b.add(Reg(EBX), Imm(1))
        self.b.add(Reg(ESI), Imm(stride))
        self.b.sub(Reg(ECX), Imm(1))
        self.b.cmp(Reg(ECX), Imm(0))
        self.b.jcc(Cond.NE, loop)

    def sum_array(self, base: Register, words: int, stride: int = 4) -> None:
        """Accumulate ``words`` consecutive words from ``[base]`` into EDX.

        Clobbers ESI, ECX and EBX.
        """
        loop = self.fresh_label("sum")
        self.b.mov(Reg(ESI), Reg(base))
        self.b.mov(Reg(ECX), Imm(words))
        self.b.label(loop)
        self.b.mov(Reg(EBX), Mem(base=ESI))
        self.b.add(Reg(EDX), Reg(EBX))
        # accumulator spill/reload: compiler-style stack-local traffic
        self.b.mov(Mem(base=ESP, disp=-8), Reg(EDX))
        self.b.mov(Reg(EDX), Mem(base=ESP, disp=-8))
        self.b.add(Reg(ESI), Imm(stride))
        self.b.sub(Reg(ECX), Imm(1))
        self.b.cmp(Reg(ECX), Imm(0))
        self.b.jcc(Cond.NE, loop)

    def copy_array(self, src: Register, dst: Register, words: int,
                   transform: bool = False) -> None:
        """Copy ``words`` words from ``[src]`` to ``[dst]`` element by element.

        With ``transform`` an ALU operation is applied to each element on the
        way (the compression-codec idiom).  Clobbers ESI, EDI, ECX, EBX.
        """
        loop = self.fresh_label("copy")
        self.b.mov(Reg(ESI), Reg(src))
        self.b.mov(Reg(EDI), Reg(dst))
        self.b.mov(Reg(ECX), Imm(words))
        self.b.label(loop)
        self.b.mov(Reg(EBX), Mem(base=ESI))
        # element staged through a stack temporary (compiler-style codegen)
        self.b.mov(Mem(base=ESP, disp=-12), Reg(EBX))
        if transform:
            self.b.xor(Reg(EBX), Imm(0x5A5A))
            self.b.shr(Reg(EBX), 1)
        self.b.mov(Mem(base=EDI), Reg(EBX))
        self.b.add(Reg(ESI), Imm(4))
        self.b.add(Reg(EDI), Imm(4))
        self.b.sub(Reg(ECX), Imm(1))
        self.b.cmp(Reg(ECX), Imm(0))
        self.b.jcc(Cond.NE, loop)

    def block_copy(self, src: Register, dst: Register, bytes_: int) -> None:
        """One ``movs`` string copy of ``bytes_`` bytes (memcpy idiom)."""
        self.b.mov(Reg(ESI), Reg(src))
        self.b.mov(Reg(EDI), Reg(dst))
        self.b.movs(bytes_)

    # ------------------------------------------------------------------ pointer structures

    def build_chain(self, base: Register, nodes: int, node_bytes: int = 16,
                    shuffle_stride: int = 0) -> None:
        """Link ``nodes`` fixed-size records at ``[base]`` into a singly linked list.

        Each node's first word is the address of the next node; the payload
        words are initialised.  With ``shuffle_stride`` the successor of node
        *i* is node ``(i + shuffle_stride) % nodes`` instead of ``i + 1``,
        producing the cache-hostile traversal order of pointer-chasing codes
        such as ``mcf``.  Clobbers ESI, EDI, ECX, EBX, EAX.
        """
        loop = self.fresh_label("link")
        stride = shuffle_stride if shuffle_stride else 1
        self.b.mov(Reg(ESI), Reg(base))         # current node
        self.b.mov(Reg(ECX), Imm(nodes))
        self.b.mov(Reg(EBX), Imm(0))             # index
        self.b.label(loop)
        # successor index = (index + stride) % nodes  (modulo via compare)
        self.b.mov(Reg(EAX), Reg(EBX))
        self.b.add(Reg(EAX), Imm(stride))
        self.b.cmp(Reg(EAX), Imm(nodes))
        skip = self.fresh_label("wrap")
        self.b.jcc(Cond.LT, skip)
        self.b.sub(Reg(EAX), Imm(nodes))
        self.b.label(skip)
        # successor address = base + successor * node_bytes
        self.b.mul(Reg(EAX), Imm(node_bytes))
        self.b.add(Reg(EAX), Reg(base))
        self.b.mov(Mem(base=ESI), Reg(EAX))       # node->next
        self.b.mov(Mem(base=ESI, disp=4), Reg(EBX))   # node->payload
        self.b.mov(Mem(base=ESI, disp=8), Imm(0))     # node->cost
        self.b.add(Reg(ESI), Imm(node_bytes))
        self.b.add(Reg(EBX), Imm(1))
        self.b.sub(Reg(ECX), Imm(1))
        self.b.cmp(Reg(ECX), Imm(0))
        self.b.jcc(Cond.NE, loop)

    def chase_chain(self, base: Register, hops: int, update: bool = False) -> None:
        """Follow ``hops`` next-pointers starting from ``[base]``.

        With ``update`` each visited node's cost word is incremented (the
        network-simplex relabelling idiom).  Clobbers ESI, ECX, EBX.
        """
        loop = self.fresh_label("chase")
        self.b.mov(Reg(ESI), Reg(base))
        self.b.mov(Reg(ECX), Imm(hops))
        self.b.label(loop)
        if update:
            self.b.mov(Reg(EBX), Mem(base=ESI, disp=8))
            self.b.add(Reg(EBX), Imm(1))
            self.b.mov(Mem(base=ESI, disp=8), Reg(EBX))
        self.b.mov(Reg(EBX), Mem(base=ESI, disp=4))
        self.b.add(Reg(EDX), Reg(EBX))
        self.b.mov(Mem(base=ESP, disp=-8), Reg(EDX))
        self.b.mov(Reg(EDX), Mem(base=ESP, disp=-8))
        self.b.mov(Reg(ESI), Mem(base=ESI))
        self.b.sub(Reg(ECX), Imm(1))
        self.b.cmp(Reg(ECX), Imm(0))
        self.b.jcc(Cond.NE, loop)

    # ------------------------------------------------------------------ hashing / pseudo-random

    def lcg_step(self, value: Register, modulus_mask: int) -> None:
        """One linear-congruential step: ``value = (value * 1103515245 + 12345) & mask``."""
        self.b.mul(Reg(value), Imm(1103515245))
        self.b.add(Reg(value), Imm(12345))
        self.b.and_(Reg(value), Imm(modulus_mask))

    def hash_update_loop(self, table: Register, iterations: int, table_words: int) -> None:
        """Hash-table update loop: pseudo-random index, read-modify-write entry.

        ``table_words`` must be a power of two.  Clobbers EAX, EBX, ECX, EDI.
        """
        if table_words & (table_words - 1):
            raise ValueError("table_words must be a power of two")
        loop = self.fresh_label("hash")
        self.b.mov(Reg(ECX), Imm(iterations))
        self.b.mov(Reg(EAX), Imm(0x1234))
        self.b.label(loop)
        self.lcg_step(EAX, (table_words - 1) * 4)
        self.b.and_(Reg(EAX), Imm(~3 & 0xFFFFFFFF))
        self.b.mov(Reg(EDI), Reg(table))
        self.b.add(Reg(EDI), Reg(EAX))
        self.b.mov(Reg(EBX), Mem(base=EDI))
        self.b.add(Reg(EBX), Imm(1))
        self.b.mov(Mem(base=EDI), Reg(EBX))
        self.b.mov(Mem(base=ESP, disp=-16), Reg(ECX))
        self.b.mov(Reg(ECX), Mem(base=ESP, disp=-16))
        self.b.sub(Reg(ECX), Imm(1))
        self.b.cmp(Reg(ECX), Imm(0))
        self.b.jcc(Cond.NE, loop)

    # ------------------------------------------------------------------ calls

    def call_leaf_repeatedly(self, function_label: str, times: int) -> None:
        """Call ``function_label`` in a counted loop (clobbers ECX)."""
        loop = self.fresh_label("callloop")
        self.b.mov(Reg(ECX), Imm(times))
        self.b.label(loop)
        self.b.push(Reg(ECX))
        self.b.call(function_label)
        self.b.pop(Reg(ECX))
        self.b.sub(Reg(ECX), Imm(1))
        self.b.cmp(Reg(ECX), Imm(0))
        self.b.jcc(Cond.NE, loop)

    def define_alu_leaf(self, function_label: str, alu_ops: int = 8) -> None:
        """Define a leaf function performing ``alu_ops`` register computations.

        Must be emitted after the ``halt`` of the main code path so it is only
        reached through calls.
        """
        self.b.label(function_label)
        self.b.mov(Reg(EAX), Imm(7))
        for i in range(alu_ops):
            if i % 3 == 0:
                self.b.add(Reg(EAX), Imm(13))
            elif i % 3 == 1:
                self.b.xor(Reg(EAX), Imm(0x55))
            else:
                self.b.shl(Reg(EAX), 1)
        self.b.ret()
