"""Synthetic analogues of the SPEC2000 integer benchmarks.

Each class models the qualitative character of one SPEC CINT2000 program --
its dominant loop idioms, allocation behaviour, working-set size and
instruction mix -- using the shared patterns of
:mod:`repro.workloads.patterns`.  The absolute instruction counts correspond
to the paper's "reduced input" simulation study (tens of thousands of
dynamic instructions at ``scale=1.0``); pass a larger ``scale`` for the
profiling-style sweeps.

All programs are *clean*: they free what they allocate, initialise memory
before reading it and never follow tainted control flow, so any lifeguard
error report on them is a reproduction bug (tests assert exactly that).
"""

from __future__ import annotations

from typing import List

from repro.isa.instructions import Cond, Imm, Mem, Reg, SyscallKind
from repro.isa.program import Program, ProgramBuilder
from repro.isa.registers import Register
from repro.workloads.base import Workload, register_spec
from repro.workloads.patterns import EAX, EBP, EBX, ECX, EDI, EDX, ESI, Patterns


@register_spec
class Bzip2(Workload):
    """bzip2: block-sorting compressor -- buffered copy/transform passes."""

    name = "bzip2"
    description = "Block compression: sequential transform passes over medium buffers."

    def build_programs(self) -> List[Program]:
        words = self.iterations(448)
        b = ProgramBuilder(self.name)
        p = Patterns(b)
        p.alloc(words * 4, EBP)            # input block
        p.alloc(words * 4, EDI)            # output block
        b.push(Reg(EDI))                   # save the output base across the passes
        b.mov(Reg(EDX), Imm(0))
        p.read_input(EBP, min(words * 4, 1024))
        p.init_array(EBP, words, start_value=3)
        # forward transform pass (read input, write output)
        p.copy_array(EBP, EDI, words, transform=True)
        b.pop(Reg(EDI))
        # reverse pass accumulates a checksum
        p.sum_array(EDI, words)
        p.sum_array(EBP, words)
        p.free(EBP)
        p.free(EDI)
        b.halt()
        return [b.build()]


@register_spec
class Crafty(Workload):
    """crafty: chess engine -- ALU/bit-twiddling heavy with deep call chains."""

    name = "crafty"
    description = "Register-heavy evaluation functions called in a search loop."

    def build_programs(self) -> List[Program]:
        calls = self.iterations(260)
        table_words = 256
        b = ProgramBuilder(self.name)
        p = Patterns(b)
        p.alloc(table_words * 4, EBP)      # piece-square table
        p.init_array(EBP, table_words, start_value=11)
        b.mov(Reg(EDX), Imm(0))
        p.call_leaf_repeatedly("evaluate", calls)
        p.hash_update_loop(EBP, self.iterations(180), table_words)
        p.sum_array(EBP, table_words)
        p.free(EBP)
        b.halt()
        p.define_alu_leaf("evaluate", alu_ops=14)
        return [b.build()]


@register_spec
class Eon(Workload):
    """eon: ray tracer -- dense arithmetic over small vectors with many calls."""

    name = "eon"
    description = "Multiply/add dense kernels over small arrays (vector maths)."

    def build_programs(self) -> List[Program]:
        words = 192
        passes = self.iterations(9)
        b = ProgramBuilder(self.name)
        p = Patterns(b)
        p.alloc(words * 4, EBP)
        p.alloc(words * 4, EDI)
        p.init_array(EBP, words, start_value=5)
        p.init_array(EDI, words, start_value=9)
        b.mov(Reg(EDX), Imm(0))
        for _ in range(passes):
            loop = p.fresh_label("dot")
            b.mov(Reg(ESI), Reg(EBP))
            b.mov(Reg(EAX), Reg(EDI))
            b.mov(Reg(ECX), Imm(words))
            b.label(loop)
            b.mov(Reg(EBX), Mem(base=ESI))
            b.mul(Reg(EBX), Imm(3))
            b.add(Reg(EBX), Mem(base=EAX))
            b.mov(Mem(base=EAX), Reg(EBX))
            b.add(Reg(EDX), Reg(EBX))
            b.add(Reg(ESI), Imm(4))
            b.add(Reg(EAX), Imm(4))
            b.sub(Reg(ECX), Imm(1))
            b.cmp(Reg(ECX), Imm(0))
            b.jcc(Cond.NE, loop)
        p.call_leaf_repeatedly("shade", self.iterations(80))
        p.free(EBP)
        p.free(EDI)
        b.halt()
        p.define_alu_leaf("shade", alu_ops=10)
        return [b.build()]


@register_spec
class Gap(Workload):
    """gap: computer algebra -- many small allocations and list traversal."""

    name = "gap"
    description = "Small-object allocation churn plus linked-list arithmetic."

    def build_programs(self) -> List[Program]:
        small_allocs = self.iterations(28)
        nodes = self.iterations(220)
        b = ProgramBuilder(self.name)
        p = Patterns(b)
        b.mov(Reg(EDX), Imm(0))
        # allocation churn: allocate, initialise, accumulate and free small vectors
        for i in range(small_allocs):
            size_words = 12 + (i % 5) * 4
            p.alloc(size_words * 4, EBP)
            p.init_array(EBP, size_words, start_value=i + 1)
            p.sum_array(EBP, size_words)
            p.free(EBP)
        # linked list of small records
        p.alloc(nodes * 16, EBP)
        p.build_chain(EBP, nodes, node_bytes=16)
        p.chase_chain(EBP, self.iterations(400))
        p.free(EBP)
        b.halt()
        return [b.build()]


@register_spec
class Gcc(Workload):
    """gcc: compiler -- allocation-heavy, branchy, irregular data structures."""

    name = "gcc"
    description = "AST-like allocation churn, hash lookups and irregular branches."

    def build_programs(self) -> List[Program]:
        passes = self.iterations(22)
        table_words = 512
        b = ProgramBuilder(self.name)
        p = Patterns(b)
        p.alloc(table_words * 4, EBP)      # symbol table
        p.init_array(EBP, table_words, start_value=1)
        b.mov(Reg(EDX), Imm(0))
        for i in range(passes):
            node_words = 8 + (i % 7) * 2
            p.alloc(node_words * 4, EDI)
            p.init_array(EDI, node_words, start_value=i)
            # branchy consumption of the node
            loop = p.fresh_label("fold")
            b.mov(Reg(ESI), Reg(EDI))
            b.mov(Reg(ECX), Imm(node_words))
            b.label(loop)
            b.mov(Reg(EBX), Mem(base=ESI))
            b.test(Reg(EBX), Imm(1))
            odd = p.fresh_label("odd")
            done = p.fresh_label("done")
            b.jcc(Cond.NE, odd)
            b.add(Reg(EDX), Reg(EBX))
            b.jmp(done)
            b.label(odd)
            b.sub(Reg(EDX), Reg(EBX))
            b.label(done)
            b.add(Reg(ESI), Imm(4))
            b.sub(Reg(ECX), Imm(1))
            b.cmp(Reg(ECX), Imm(0))
            b.jcc(Cond.NE, loop)
            p.free(EDI)
        p.hash_update_loop(EBP, self.iterations(260), table_words)
        p.free(EBP)
        b.halt()
        return [b.build()]


@register_spec
class Gzip(Workload):
    """gzip: LZ77 compressor -- sliding-window copies and hash-chain updates."""

    name = "gzip"
    description = "Byte-stream compression: window copies, hash-chain updates."

    def build_programs(self) -> List[Program]:
        words = self.iterations(384)
        b = ProgramBuilder(self.name)
        p = Patterns(b)
        p.alloc(words * 4, EBP)            # window
        p.alloc(words * 4, EDI)            # output
        b.push(Reg(EDI))                   # save the output base across the passes
        p.read_input(EBP, words * 4, kind=SyscallKind.READ)
        # literal/match emission pass
        b.mov(Reg(EDX), Imm(0))
        p.copy_array(EBP, EDI, words, transform=True)
        b.pop(Reg(EDI))
        # block copies model matched-string emission
        for _ in range(self.iterations(6)):
            b.push(Reg(EDI))
            p.block_copy(EBP, EDI, 256)
            b.pop(Reg(EDI))
        p.sum_array(EDI, words)
        p.free(EBP)
        p.free(EDI)
        b.halt()
        return [b.build()]


@register_spec
class Mcf(Workload):
    """mcf: network simplex -- pointer chasing over a working set larger than L1."""

    name = "mcf"
    description = "Cache-hostile pointer chasing with in-place cost updates."

    def build_programs(self) -> List[Program]:
        nodes = self.iterations(640)
        hops = self.iterations(1200)
        b = ProgramBuilder(self.name)
        p = Patterns(b)
        p.alloc(nodes * 16, EBP)
        b.mov(Reg(EDX), Imm(0))
        # shuffled successor order defeats spatial locality
        p.build_chain(EBP, nodes, node_bytes=16, shuffle_stride=max(3, nodes // 3))
        p.chase_chain(EBP, hops, update=True)
        p.chase_chain(EBP, hops // 2, update=False)
        p.free(EBP)
        b.halt()
        return [b.build()]


@register_spec
class Parser(Workload):
    """parser: link grammar parser -- byte-granularity string handling."""

    name = "parser"
    description = "Byte loads/stores over word buffers plus dictionary hashing."

    def build_programs(self) -> List[Program]:
        chars = self.iterations(700)
        b = ProgramBuilder(self.name)
        p = Patterns(b)
        p.alloc(chars, EBP)                # sentence buffer (bytes)
        p.alloc(chars, EDI)                # token buffer
        p.read_input(EBP, chars)
        b.mov(Reg(EDX), Imm(0))
        # byte-wise tokenisation: load byte, classify, store transformed byte
        loop = p.fresh_label("tok")
        b.mov(Reg(ESI), Reg(EBP))
        b.mov(Reg(EAX), Reg(EDI))
        b.mov(Reg(ECX), Imm(chars))
        b.label(loop)
        b.mov(Reg(EBX), Mem(base=ESI, size=1))
        b.and_(Reg(EBX), Imm(0x7F))
        b.add(Reg(EDX), Reg(EBX))
        b.mov(Mem(base=EAX, size=1), Reg(EBX))
        b.add(Reg(ESI), Imm(1))
        b.add(Reg(EAX), Imm(1))
        b.sub(Reg(ECX), Imm(1))
        b.cmp(Reg(ECX), Imm(0))
        b.jcc(Cond.NE, loop)
        p.free(EBP)
        p.free(EDI)
        b.halt()
        return [b.build()]


@register_spec
class Twolf(Workload):
    """twolf: placement/routing -- random swaps over a moderate table."""

    name = "twolf"
    description = "Pseudo-random read-modify-write swaps over a placement table."

    def build_programs(self) -> List[Program]:
        table_words = 1024
        swaps = self.iterations(420)
        b = ProgramBuilder(self.name)
        p = Patterns(b)
        p.alloc(table_words * 4, EBP)
        p.init_array(EBP, table_words, start_value=17)
        b.mov(Reg(EDX), Imm(0))
        # swap loop: two pseudo-random cells exchanged and cost accumulated
        loop = p.fresh_label("swap")
        b.mov(Reg(ECX), Imm(swaps))
        b.mov(Reg(EAX), Imm(0xBEEF))
        b.label(loop)
        p.lcg_step(EAX, (table_words - 1) * 4)
        b.and_(Reg(EAX), Imm(~3 & 0xFFFFFFFF))
        b.mov(Reg(EDI), Reg(EBP))
        b.add(Reg(EDI), Reg(EAX))
        b.mov(Reg(EBX), Mem(base=EDI))            # cell a
        b.mov(Reg(ESI), Mem(base=EBP))            # cell 0
        b.mov(Mem(base=EDI), Reg(ESI))
        b.mov(Mem(base=EBP), Reg(EBX))
        b.add(Reg(EDX), Reg(EBX))
        b.sub(Reg(ECX), Imm(1))
        b.cmp(Reg(ECX), Imm(0))
        b.jcc(Cond.NE, loop)
        p.sum_array(EBP, table_words)
        p.free(EBP)
        b.halt()
        return [b.build()]


@register_spec
class Vortex(Workload):
    """vortex: object database -- object allocation and memcpy-style movement."""

    name = "vortex"
    description = "Object store: allocation, block copies between records, lookups."

    def build_programs(self) -> List[Program]:
        objects = self.iterations(26)
        object_words = 32
        b = ProgramBuilder(self.name)
        p = Patterns(b)
        p.alloc(objects * 4, EBP)          # object pointer table
        b.mov(Reg(EDX), Imm(0))
        p.init_array(EBP, objects, start_value=0)
        for i in range(objects):
            p.alloc(object_words * 4, EDI)
            p.init_array(EDI, object_words, start_value=i * 3)
            b.mov(Reg(EAX), Reg(EBP))
            b.mov(Mem(base=EAX, disp=i * 4), Reg(EDI))
        # block copies shuffle records (transaction processing)
        for i in range(self.iterations(14)):
            src_slot = (i * 7) % objects
            dst_slot = (i * 11 + 3) % objects
            b.mov(Reg(ESI), Mem(base=EBP, disp=src_slot * 4))
            b.mov(Reg(EDI), Mem(base=EBP, disp=dst_slot * 4))
            b.movs(object_words * 4)
        # free all objects through the table
        for i in range(objects):
            b.mov(Reg(EAX), Mem(base=EBP, disp=i * 4))
            b.free(Reg(EAX))
        p.free(EBP)
        b.halt()
        return [b.build()]


@register_spec
class Vpr(Workload):
    """vpr: FPGA place & route -- grid neighbourhood updates."""

    name = "vpr"
    description = "2-D grid relaxation: neighbour reads, centre writes, cost sums."

    def build_programs(self) -> List[Program]:
        side = 24
        sweeps = self.iterations(7)
        words = side * side
        b = ProgramBuilder(self.name)
        p = Patterns(b)
        p.alloc(words * 4, EBP)
        p.init_array(EBP, words, start_value=2)
        b.mov(Reg(EDX), Imm(0))
        for _ in range(sweeps):
            loop = p.fresh_label("relax")
            b.mov(Reg(ESI), Reg(EBP))
            b.add(Reg(ESI), Imm(side * 4))          # start at row 1
            b.mov(Reg(ECX), Imm(words - 2 * side))
            b.label(loop)
            b.mov(Reg(EBX), Mem(base=ESI, disp=-side * 4 & 0xFFFFFFFF))
            b.add(Reg(EBX), Mem(base=ESI, disp=side * 4))
            b.shr(Reg(EBX), 1)
            b.mov(Mem(base=ESI), Reg(EBX))
            b.add(Reg(EDX), Reg(EBX))
            b.add(Reg(ESI), Imm(4))
            b.sub(Reg(ECX), Imm(1))
            b.cmp(Reg(ECX), Imm(0))
            b.jcc(Cond.NE, loop)
        p.sum_array(EBP, words)
        p.free(EBP)
        b.halt()
        return [b.build()]
