"""Tests for the profiling-study models (IT / IF / M-TLB sweeps)."""

import pytest

from repro.analysis import (
    Profiler,
    choose_flexible_level1_bits,
    if_reduction,
    it_reduction,
    mtlb_miss_rate,
    sweep_if_design_space,
    sweep_it_reduction,
    sweep_mtlb_flexible_vs_fixed,
)

SCALE = 0.3
BENCHMARKS = ["bzip2", "mcf", "gcc"]


@pytest.fixture(scope="module")
def profiler():
    return Profiler()


class TestProfiler:
    def test_traces_are_memoised(self, profiler):
        first = profiler.trace("bzip2", SCALE)
        second = profiler.trace("bzip2", SCALE)
        assert first is second

    def test_summary_statistics(self, profiler):
        summary = profiler.summary("bzip2", SCALE)
        assert summary.instructions > 1000
        assert 0.1 < summary.memory_access_fraction < 0.9
        assert summary.propagation_events > 0
        assert summary.memory_footprint_pages > 0


class TestITModel:
    def test_reduction_in_valid_range(self, profiler):
        for name in BENCHMARKS:
            result = it_reduction(name, profiler.trace(name, SCALE))
            assert 0.0 < result.reduction < 1.0
            assert result.delivered_with_it <= result.delivered_without_it

    def test_reduction_matches_paper_band(self, profiler):
        reductions = [
            it_reduction(name, profiler.trace(name, SCALE)).reduction for name in BENCHMARKS
        ]
        # the paper reports 35.8%-82.0%; allow a wider tolerance for the
        # synthetic workloads but insist on a substantial reduction
        assert all(r > 0.25 for r in reductions)


class TestIFModel:
    def test_more_entries_never_reduce_effectiveness(self, profiler):
        trace = profiler.trace("gcc", SCALE)
        small = if_reduction("gcc", trace, num_entries=8, associativity=0).reduction
        large = if_reduction("gcc", trace, num_entries=256, associativity=0).reduction
        assert large >= small - 0.02

    def test_combined_policy_at_least_as_effective_as_separate(self, profiler):
        trace = profiler.trace("bzip2", SCALE)
        combined = if_reduction("bzip2", trace, 32, 0, "combined").reduction
        separate = if_reduction("bzip2", trace, 32, 0, "separate").reduction
        assert combined >= separate - 0.02

    def test_32_entry_filter_is_effective(self, profiler):
        trace = profiler.trace("twolf", SCALE)
        assert if_reduction("twolf", trace, 32, 0, "combined").reduction > 0.3

    def test_invalid_policy_rejected(self, profiler):
        with pytest.raises(ValueError):
            if_reduction("bzip2", profiler.trace("bzip2", SCALE), policy="bogus")

    def test_sweep_structure(self, profiler):
        sweep = sweep_if_design_space(
            profiler, "combined", ["bzip2"], entries=(8, 32), associativities=(0, 4), scale=SCALE
        )
        assert set(sweep) == {0, 4}
        assert set(sweep[0]) == {8, 32}


class TestMTLBModel:
    def test_more_entries_do_not_increase_miss_rate(self, profiler):
        trace = profiler.trace("mcf", SCALE)
        small = mtlb_miss_rate("mcf", trace, level1_bits=20, num_entries=16).miss_rate
        large = mtlb_miss_rate("mcf", trace, level1_bits=20, num_entries=256).miss_rate
        assert large <= small + 1e-9

    def test_fewer_level1_bits_do_not_increase_miss_rate(self, profiler):
        trace = profiler.trace("mcf", SCALE)
        fine = mtlb_miss_rate("mcf", trace, level1_bits=20, num_entries=16).miss_rate
        coarse = mtlb_miss_rate("mcf", trace, level1_bits=10, num_entries=16).miss_rate
        assert coarse <= fine + 1e-9

    def test_flexible_bits_within_candidate_range(self, profiler):
        bits = choose_flexible_level1_bits(profiler.trace("gcc", SCALE))
        assert 8 <= bits <= 20

    def test_flexible_never_worse_than_fixed(self, profiler):
        comparison = sweep_mtlb_flexible_vs_fixed(profiler, ["mcf"], entries=(16,), scale=SCALE)
        data = comparison["mcf"]
        assert data["flexible"][16] <= data["fixed"][16] + 1e-9

    def test_it_sweep_covers_requested_benchmarks(self, profiler):
        results = sweep_it_reduction(profiler, BENCHMARKS, scale=SCALE)
        assert [r.workload for r in results] == BENCHMARKS
