"""Tests for the cache model and the memory hierarchy."""

import pytest

from repro.cache.cache import Cache
from repro.cache.hierarchy import AccessType, MemoryHierarchy
from repro.core.config import CacheConfig, MemoryHierarchyConfig


class TestCache:
    def make(self, size=1024, line=64, ways=2):
        return Cache(CacheConfig(size, line, ways, 1))

    def test_miss_then_hit(self):
        cache = self.make()
        assert cache.access(0x1000) is False
        assert cache.access(0x1000) is True

    def test_same_line_hits(self):
        cache = self.make()
        cache.access(0x1000)
        assert cache.access(0x103F) is True
        assert cache.access(0x1040) is False

    def test_lru_eviction_within_set(self):
        cache = self.make(size=256, line=64, ways=2)   # 2 sets, 2 ways
        num_sets = cache.config.num_sets
        base = 0x0
        stride = num_sets * 64                          # same set, different tags
        cache.access(base)
        cache.access(base + stride)
        cache.access(base)                              # refresh first line
        cache.access(base + 2 * stride)                 # evicts the second line
        assert cache.contains(base)
        assert not cache.contains(base + stride)

    def test_dirty_eviction_counts_writeback(self):
        cache = self.make(size=128, line=64, ways=1)    # direct mapped, 2 sets
        stride = cache.config.num_sets * 64
        cache.access(0x0, is_write=True)
        cache.access(stride)                            # evicts dirty line
        assert cache.stats.writebacks == 1

    def test_access_range_spanning_lines(self):
        cache = self.make()
        misses = cache.access_range(0x1030, 64)
        assert misses == 2

    def test_invalidate_all(self):
        cache = self.make()
        cache.access(0x1000)
        cache.invalidate_all()
        assert cache.resident_lines() == 0

    def test_miss_rate(self):
        cache = self.make()
        cache.access(0x0)
        cache.access(0x0)
        assert cache.stats.miss_rate == pytest.approx(0.5)


class TestHierarchy:
    def test_latencies_by_level(self):
        hierarchy = MemoryHierarchy(MemoryHierarchyConfig(), num_cores=2)
        cold = hierarchy.access(0, 0x1000, AccessType.DATA_READ)
        warm = hierarchy.access(0, 0x1000, AccessType.DATA_READ)
        assert cold == 1 + 10 + 200
        assert warm == 1

    def test_l2_shared_between_cores(self):
        hierarchy = MemoryHierarchy(num_cores=2)
        hierarchy.access(0, 0x2000, AccessType.DATA_READ)
        # core 1 misses its private L1 but hits the shared L2
        latency = hierarchy.access(1, 0x2000, AccessType.DATA_READ)
        assert latency == 1 + 10

    def test_instruction_fetch_uses_l1i(self):
        hierarchy = MemoryHierarchy(num_cores=1)
        hierarchy.access(0, 0x8048000, AccessType.INSTRUCTION_FETCH)
        assert hierarchy.core(0).l1i.stats.accesses == 1
        assert hierarchy.core(0).l1d.stats.accesses == 0

    def test_private_l1_per_core(self):
        hierarchy = MemoryHierarchy(num_cores=2)
        hierarchy.access(0, 0x3000, AccessType.DATA_WRITE)
        assert hierarchy.core(1).l1d.stats.accesses == 0

    def test_miss_rate_helper(self):
        hierarchy = MemoryHierarchy(num_cores=1)
        hierarchy.access(0, 0x1000, AccessType.DATA_READ)
        hierarchy.access(0, 0x1000, AccessType.DATA_READ)
        assert hierarchy.total_l1_miss_rate(0) == pytest.approx(0.5)
