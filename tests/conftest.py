"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.isa.instructions import Cond, Imm, Mem, Reg
from repro.isa.machine import Machine
from repro.isa.program import Program, ProgramBuilder
from repro.isa.registers import Register


def build_copy_loop(iterations: int = 8) -> Program:
    """A small malloc/init/copy/free program exercising all event classes."""
    b = ProgramBuilder("copy_loop")
    b.malloc(Imm(max(iterations, 1) * 8))
    b.mov(Reg(Register.EBP), Reg(Register.EAX))
    b.mov(Reg(Register.ESI), Reg(Register.EAX))
    b.mov(Reg(Register.ECX), Imm(iterations))
    b.label("init")
    b.mov(Mem(base=Register.ESI), Reg(Register.ECX))
    b.add(Reg(Register.ESI), Imm(4))
    b.sub(Reg(Register.ECX), Imm(1))
    b.cmp(Reg(Register.ECX), Imm(0))
    b.jcc(Cond.NE, "init")
    b.mov(Reg(Register.ESI), Reg(Register.EBP))
    b.mov(Reg(Register.ECX), Imm(iterations))
    b.label("sum")
    b.mov(Reg(Register.EBX), Mem(base=Register.ESI))
    b.add(Reg(Register.EDX), Reg(Register.EBX))
    b.add(Reg(Register.ESI), Imm(4))
    b.sub(Reg(Register.ECX), Imm(1))
    b.cmp(Reg(Register.ECX), Imm(0))
    b.jcc(Cond.NE, "sum")
    b.free(Reg(Register.EBP))
    b.halt()
    return b.build()


@pytest.fixture
def copy_loop_program() -> Program:
    """Small clean program fixture."""
    return build_copy_loop()


@pytest.fixture
def copy_loop_trace(copy_loop_program):
    """Full record trace of the copy-loop program."""
    return Machine(copy_loop_program).trace()
