"""Shared fixtures for the test suite."""

from __future__ import annotations

import glob
import os

import pytest

from repro.isa.instructions import Cond, Imm, Mem, Reg
from repro.isa.machine import Machine
from repro.isa.program import Program, ProgramBuilder
from repro.isa.registers import Register


def build_copy_loop(iterations: int = 8) -> Program:
    """A small malloc/init/copy/free program exercising all event classes."""
    b = ProgramBuilder("copy_loop")
    b.malloc(Imm(max(iterations, 1) * 8))
    b.mov(Reg(Register.EBP), Reg(Register.EAX))
    b.mov(Reg(Register.ESI), Reg(Register.EAX))
    b.mov(Reg(Register.ECX), Imm(iterations))
    b.label("init")
    b.mov(Mem(base=Register.ESI), Reg(Register.ECX))
    b.add(Reg(Register.ESI), Imm(4))
    b.sub(Reg(Register.ECX), Imm(1))
    b.cmp(Reg(Register.ECX), Imm(0))
    b.jcc(Cond.NE, "init")
    b.mov(Reg(Register.ESI), Reg(Register.EBP))
    b.mov(Reg(Register.ECX), Imm(iterations))
    b.label("sum")
    b.mov(Reg(Register.EBX), Mem(base=Register.ESI))
    b.add(Reg(Register.EDX), Reg(Register.EBX))
    b.add(Reg(Register.ESI), Imm(4))
    b.sub(Reg(Register.ECX), Imm(1))
    b.cmp(Reg(Register.ECX), Imm(0))
    b.jcc(Cond.NE, "sum")
    b.free(Reg(Register.EBP))
    b.halt()
    return b.build()


@pytest.fixture
def copy_loop_program() -> Program:
    """Small clean program fixture."""
    return build_copy_loop()


@pytest.fixture
def copy_loop_trace(copy_loop_program):
    """Full record trace of the copy-loop program."""
    return Machine(copy_loop_program).trace()


#: Where POSIX shared memory surfaces as files; every segment the replay
#: transport creates carries :data:`repro.trace.shm.SEGMENT_PREFIX`.
_SHM_GLOB = "/dev/shm/repro_shm_*"


@pytest.fixture(autouse=True)
def shm_leak_gate():
    """Fail any test that leaks a replay shared-memory segment.

    The segment lifecycle contract is that :class:`SegmentPool` unlinks
    every segment on every supervisor exit path (success, ``ReplayError``,
    ``KeyboardInterrupt``), so no test -- including the chaos and
    fault-injection ones -- may leave one behind.  Checked per-test so a
    leak is pinned to the test that caused it; the CI workflow re-checks
    ``/dev/shm`` once more after the whole session as a backstop.
    """
    if not os.path.isdir("/dev/shm"):
        yield
        return
    before = set(glob.glob(_SHM_GLOB))
    yield
    leaked = sorted(set(glob.glob(_SHM_GLOB)) - before)
    assert not leaked, f"shared-memory segments leaked by this test: {leaked}"
