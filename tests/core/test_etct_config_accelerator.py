"""Tests for the ETCT, the configuration dataclasses and the accelerator pipeline."""

import pytest

from repro.core.accelerator import AcceleratorConfig, EventAccelerator
from repro.core.config import (
    BASELINE_CONFIG,
    OPTIMIZED_CONFIG,
    CacheConfig,
    IFConfig,
    ITConfig,
    LogBufferConfig,
    MTLBConfig,
    SystemConfig,
)
from repro.core.etct import ETCT, ETCTEntry, InvalidationPolicy
from repro.core.events import AnnotationRecord, DeliveredEvent, EventType, InstructionRecord


class TestETCT:
    def test_register_and_lookup(self):
        etct = ETCT()
        handler = lambda event: None
        entry = etct.register_handler(EventType.MEM_LOAD, handler, handler_instructions=7)
        assert etct.lookup(EventType.MEM_LOAD) is entry
        assert etct.is_registered(EventType.MEM_LOAD)
        assert not etct.is_registered(EventType.MEM_STORE)

    def test_filter_key_uses_cc_and_fields(self):
        etct = ETCT()
        entry = etct.register_handler(
            EventType.MEM_LOAD, lambda e: None, cacheable=True, check_category=7,
            cacheable_fields=("address", "size", "thread_id"),
        )
        event = DeliveredEvent(EventType.MEM_LOAD, src_addr=0x40, size=4, thread_id=2)
        assert etct.filter_key(entry, event) == (7, 0x40, 4, 2)

    def test_filter_key_prefers_dest_address(self):
        etct = ETCT()
        entry = etct.register_handler(EventType.MEM_STORE, lambda e: None, cacheable=True)
        event = DeliveredEvent(EventType.MEM_STORE, dest_addr=0x99, src_addr=0x11, size=2)
        assert etct.filter_key(entry, event)[1] == 0x99

    def test_unknown_cacheable_field_rejected(self):
        with pytest.raises(ValueError):
            ETCTEntry(EventType.MEM_LOAD, cacheable_fields=("bogus",))


class TestConfig:
    def test_table2_defaults(self):
        config = SystemConfig()
        assert config.hierarchy.l1d.size_bytes == 16 * 1024
        assert config.hierarchy.l1d.associativity == 2
        assert config.hierarchy.l2.size_bytes == 512 * 1024
        assert config.hierarchy.l2.latency_cycles == 10
        assert config.hierarchy.memory_latency_cycles == 200
        assert config.log_buffer.size_bytes == 64 * 1024
        assert config.idempotent_filter.num_entries == 32
        assert config.it.num_registers == 8
        assert config.mtlb.lookup_latency_cycles == 1

    def test_with_techniques_toggles(self):
        config = SystemConfig().with_techniques(lma=False, it=False, idempotent_filter=True)
        assert not config.mtlb.enabled
        assert not config.it.enabled
        assert config.idempotent_filter.enabled

    def test_baseline_and_optimized_presets(self):
        assert not BASELINE_CONFIG.mtlb.enabled
        assert not BASELINE_CONFIG.it.enabled
        assert not BASELINE_CONFIG.idempotent_filter.enabled
        assert OPTIMIZED_CONFIG.mtlb.enabled and OPTIMIZED_CONFIG.it.enabled

    def test_cache_config_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(1000, 64, 3, 1)
        assert CacheConfig(16 * 1024, 64, 2, 1).num_sets == 128

    def test_log_buffer_capacity(self):
        assert LogBufferConfig(size_bytes=1024, bytes_per_record=1.0).capacity_records == 1024


def _instruction(event_type, **kwargs):
    return InstructionRecord(pc=0x400, event_type=event_type, **kwargs)


def _etct_with(*event_types, cacheable=(), invalidation=None):
    etct = ETCT()
    calls = []
    for event_type in event_types:
        etct.register_handler(
            event_type, calls.append, handler_instructions=3,
            cacheable=event_type in cacheable, check_category=1,
            invalidation=invalidation or InvalidationPolicy.NONE,
        )
    return etct, calls


class TestAcceleratorPipeline:
    def test_baseline_delivers_registered_propagation(self):
        etct, _ = _etct_with(EventType.REG_TO_MEM)
        acc = EventAccelerator(etct, AcceleratorConfig.baseline())
        delivered = acc.process(_instruction(EventType.REG_TO_MEM, src_reg=0, dest_addr=8, size=4,
                                             is_store=True))
        assert [e.event_type for e in delivered] == [EventType.REG_TO_MEM]

    def test_unregistered_events_not_delivered(self):
        etct, _ = _etct_with(EventType.MEM_LOAD)
        acc = EventAccelerator(etct, AcceleratorConfig.baseline())
        delivered = acc.process(_instruction(EventType.REG_TO_REG, dest_reg=0, src_reg=1))
        assert delivered == []

    def test_it_consumes_copy_events(self):
        etct, _ = _etct_with(EventType.MEM_TO_REG, EventType.REG_TO_MEM, EventType.MEM_TO_MEM,
                             EventType.IMM_TO_MEM)
        acc = EventAccelerator(etct, AcceleratorConfig())
        delivered = acc.process(_instruction(EventType.MEM_TO_REG, dest_reg=0, src_addr=0x80,
                                             size=4, is_load=True))
        assert delivered == []
        assert acc.stats.propagation_events_in == 1
        assert acc.stats.propagation_events_delivered == 0

    def test_check_events_filtered_by_if(self):
        etct, calls = _etct_with(EventType.MEM_LOAD, cacheable={EventType.MEM_LOAD})
        acc = EventAccelerator(etct, AcceleratorConfig())
        record = _instruction(EventType.MEM_TO_REG, dest_reg=0, src_addr=0x80, size=4, is_load=True)
        first = acc.process(record)
        second = acc.process(record)
        assert len(first) == 1 and second == []
        assert acc.stats.check_events_filtered == 1

    def test_rare_event_flush_all_invalidates_filter(self):
        etct, _ = _etct_with(
            EventType.MEM_LOAD, EventType.FREE,
            cacheable={EventType.MEM_LOAD}, invalidation=InvalidationPolicy.FLUSH_ALL,
        )
        acc = EventAccelerator(etct, AcceleratorConfig())
        record = _instruction(EventType.MEM_TO_REG, src_addr=0x80, size=4, is_load=True, dest_reg=0)
        acc.process(record)
        acc.process(AnnotationRecord(EventType.FREE, address=0x80, size=4))
        delivered = acc.process(record)
        assert len(delivered) == 1  # re-delivered after invalidation

    def test_rare_event_delivered_to_handler(self):
        etct, calls = _etct_with(EventType.MALLOC)
        acc = EventAccelerator(etct, AcceleratorConfig.baseline())
        delivered = acc.process(AnnotationRecord(EventType.MALLOC, address=0x9000, size=64))
        assert [e.event_type for e in delivered] == [EventType.MALLOC]

    def test_check_classification_covers_all_kinds(self):
        etct, _ = _etct_with(
            EventType.MEM_LOAD, EventType.MEM_STORE, EventType.ADDR_COMPUTE,
            EventType.COND_TEST, EventType.INDIRECT_JUMP,
        )
        acc = EventAccelerator(etct, AcceleratorConfig.baseline())
        record = InstructionRecord(
            pc=1, event_type=EventType.MEM_SELF, dest_addr=0x40, size=4,
            is_load=True, is_store=True, base_reg=4, src_addr=0x40,
        )
        delivered = acc.process(record)
        types = {e.event_type for e in delivered}
        assert EventType.MEM_LOAD in types
        assert EventType.MEM_STORE in types
        assert EventType.ADDR_COMPUTE in types

    def test_indirect_jump_flushes_it_register(self):
        etct, _ = _etct_with(EventType.MEM_TO_REG, EventType.INDIRECT_JUMP)
        acc = EventAccelerator(etct, AcceleratorConfig())
        acc.process(_instruction(EventType.MEM_TO_REG, dest_reg=0, src_addr=0x80, size=4,
                                 is_load=True))
        delivered = acc.process(
            InstructionRecord(pc=2, event_type=EventType.INDIRECT_JUMP, src_reg=0,
                              is_indirect_jump=True)
        )
        types = [e.event_type for e in delivered]
        assert types[0] is EventType.MEM_TO_REG
        assert EventType.INDIRECT_JUMP in types

    def test_reduction_statistics(self):
        etct, _ = _etct_with(EventType.MEM_LOAD, EventType.MEM_TO_REG,
                             cacheable={EventType.MEM_LOAD})
        acc = EventAccelerator(etct, AcceleratorConfig())
        record = _instruction(EventType.MEM_TO_REG, dest_reg=0, src_addr=0x80, size=4, is_load=True)
        for _ in range(4):
            acc.process(record)
        assert acc.stats.update_event_reduction == 1.0
        assert 0.0 < acc.stats.check_event_reduction < 1.0
