"""Tests for the event taxonomy and record types."""

from repro.core.events import (
    AnnotationRecord,
    DeliveredEvent,
    EventClass,
    EventType,
    InstructionRecord,
)


class TestEventTaxonomy:
    def test_propagation_events_match_figure5(self):
        expected = {
            "imm_to_reg", "imm_to_mem", "reg_self", "mem_self", "reg_to_reg",
            "reg_to_mem", "mem_to_reg", "mem_to_mem", "dest_reg_op_reg",
            "dest_reg_op_mem", "dest_mem_op_reg", "other",
        }
        actual = {e.value for e in EventType if e.is_propagation}
        assert actual == expected

    def test_check_events(self):
        checks = {e for e in EventType if e.is_check}
        assert EventType.MEM_LOAD in checks
        assert EventType.MEM_STORE in checks
        assert EventType.ADDR_COMPUTE in checks
        assert EventType.COND_TEST in checks
        assert EventType.INDIRECT_JUMP in checks

    def test_rare_events(self):
        assert EventType.MALLOC.is_rare
        assert EventType.FREE.is_rare
        assert EventType.SYSCALL_READ.is_rare
        assert not EventType.MEM_LOAD.is_rare
        assert not EventType.REG_TO_MEM.is_rare

    def test_control_is_neutral(self):
        assert EventType.CONTROL.event_class is EventClass.NEUTRAL
        assert not EventType.CONTROL.is_propagation
        assert not EventType.CONTROL.is_check
        assert not EventType.CONTROL.is_rare

    def test_event_class_partition(self):
        for event_type in EventType:
            classes = [
                event_type.is_propagation,
                event_type.is_check,
                event_type.is_rare,
                event_type.event_class is EventClass.NEUTRAL,
            ]
            assert sum(classes) == 1, event_type


class TestInstructionRecord:
    def test_memory_range_prefers_store(self):
        record = InstructionRecord(
            pc=0x1000, event_type=EventType.MEM_TO_MEM,
            dest_addr=0x2000, src_addr=0x3000, size=4, is_load=True, is_store=True,
        )
        assert record.memory_range() == (0x2000, 4)

    def test_memory_range_load_only(self):
        record = InstructionRecord(
            pc=0x1000, event_type=EventType.MEM_TO_REG, src_addr=0x3000, size=2, is_load=True,
        )
        assert record.memory_range() == (0x3000, 2)

    def test_memory_range_none(self):
        record = InstructionRecord(pc=0x1000, event_type=EventType.REG_TO_REG)
        assert record.memory_range() is None

    def test_records_are_frozen(self):
        record = InstructionRecord(pc=0, event_type=EventType.REG_TO_REG)
        try:
            record.pc = 5
            assert False, "record should be immutable"
        except AttributeError:
            pass


class TestDeliveredEvent:
    def test_from_instruction_copies_fields(self):
        record = InstructionRecord(
            pc=0x42, event_type=EventType.MEM_TO_REG, dest_reg=1, src_addr=0x100,
            size=4, is_load=True, thread_id=3,
        )
        event = DeliveredEvent.from_instruction(record)
        assert event.event_type is EventType.MEM_TO_REG
        assert event.pc == 0x42
        assert event.dest_reg == 1
        assert event.src_addr == 0x100
        assert event.thread_id == 3
        assert event.origin is record

    def test_from_instruction_with_override(self):
        record = InstructionRecord(pc=1, event_type=EventType.REG_TO_MEM, dest_addr=8, size=4)
        event = DeliveredEvent.from_instruction(record, EventType.IMM_TO_MEM)
        assert event.event_type is EventType.IMM_TO_MEM
        assert event.dest_addr == 8

    def test_from_annotation(self):
        record = AnnotationRecord(EventType.MALLOC, address=0x9000, size=64, thread_id=1, pc=7)
        event = DeliveredEvent.from_annotation(record)
        assert event.event_type is EventType.MALLOC
        assert event.dest_addr == 0x9000
        assert event.size == 64
        assert event.thread_id == 1
