"""Tests for the Idempotent Filter cache (Section 5)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import IFConfig
from repro.core.idempotent_filter import IdempotentFilter


class TestBasicFiltering:
    def test_first_lookup_misses_then_hits(self):
        f = IdempotentFilter(IFConfig(num_entries=32, associativity=0))
        key = (1, 0x1000, 4)
        assert f.lookup_insert(key) is False
        assert f.lookup_insert(key) is True
        assert f.stats.hits == 1
        assert f.stats.misses == 1

    def test_distinct_keys_do_not_hit(self):
        f = IdempotentFilter(IFConfig(num_entries=32))
        assert f.lookup_insert((1, 0x1000, 4)) is False
        assert f.lookup_insert((1, 0x1004, 4)) is False
        assert f.lookup_insert((2, 0x1000, 4)) is False

    def test_lru_eviction_fully_associative(self):
        f = IdempotentFilter(IFConfig(num_entries=4, associativity=0))
        for i in range(4):
            f.lookup_insert((1, i, 4))
        f.lookup_insert((1, 0, 4))        # refresh key 0
        f.lookup_insert((1, 99, 4))       # evicts key 1 (the LRU)
        assert f.contains((1, 0, 4))
        assert not f.contains((1, 1, 4))

    def test_set_associative_geometry(self):
        config = IFConfig(num_entries=32, associativity=4)
        f = IdempotentFilter(config)
        assert f.num_sets == 8
        assert f.ways == 4

    def test_filtered_fraction(self):
        f = IdempotentFilter(IFConfig(num_entries=8))
        for _ in range(4):
            f.lookup_insert((1, 0x10, 4))
        assert f.stats.filtered_fraction == pytest.approx(0.75)


class TestInvalidation:
    def test_invalidate_all(self):
        f = IdempotentFilter(IFConfig(num_entries=16))
        f.lookup_insert((1, 0x10, 4))
        f.invalidate_all()
        assert f.resident_entries() == 0
        assert f.lookup_insert((1, 0x10, 4)) is False

    def test_invalidate_matching(self):
        f = IdempotentFilter(IFConfig(num_entries=16))
        f.lookup_insert((1, 0x10, 4))
        f.lookup_insert((1, 0x20, 4))
        f.invalidate_matching((1, 0x10, 4))
        assert not f.contains((1, 0x10, 4))
        assert f.contains((1, 0x20, 4))

    def test_invalidate_range(self):
        f = IdempotentFilter(IFConfig(num_entries=16))
        f.lookup_insert((1, 0x100, 4))
        f.lookup_insert((1, 0x104, 4))
        f.lookup_insert((1, 0x200, 4))
        removed = f.invalidate_range(1, 0x100, 8)
        assert removed == 2
        assert f.contains((1, 0x200, 4))


class TestConfigValidation:
    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            IFConfig(num_entries=0)

    def test_rejects_bad_associativity(self):
        with pytest.raises(ValueError):
            IFConfig(num_entries=32, associativity=5)

    def test_fully_associative_ways(self):
        assert IFConfig(num_entries=32, associativity=0).ways == 32


class TestProperties:
    @given(
        keys=st.lists(st.tuples(st.integers(1, 3), st.integers(0, 200), st.just(4)),
                      min_size=1, max_size=300),
        entries=st.sampled_from([8, 16, 32, 64]),
        associativity=st.sampled_from([0, 1, 2, 4]),
    )
    @settings(max_examples=40, deadline=None)
    def test_capacity_never_exceeded(self, keys, entries, associativity):
        f = IdempotentFilter(IFConfig(num_entries=entries, associativity=associativity))
        for key in keys:
            f.lookup_insert(key)
        assert f.resident_entries() <= entries

    @given(keys=st.lists(st.tuples(st.integers(0, 50), st.integers(0, 50)), max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_hit_implies_previously_inserted(self, keys):
        f = IdempotentFilter(IFConfig(num_entries=16, associativity=0))
        seen = set()
        for key in keys:
            hit = f.lookup_insert(key)
            if hit:
                assert key in seen
            seen.add(key)

    @given(keys=st.lists(st.tuples(st.integers(0, 8), st.integers(0, 8)), max_size=150))
    @settings(max_examples=30, deadline=None)
    def test_stats_consistency(self, keys):
        f = IdempotentFilter(IFConfig(num_entries=8, associativity=2))
        for key in keys:
            f.lookup_insert(key)
        assert f.stats.hits + f.stats.misses == f.stats.lookups == len(keys)


class TestFilterAddressRun:
    """The columnar run-dedup twin must equal a lookup_insert loop."""

    @given(
        rows=st.lists(
            st.tuples(st.integers(0, 40), st.integers(1, 8), st.integers(0, 3)),
            min_size=1, max_size=120,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_lookup_insert_loop(self, rows):
        addresses = [address for address, _, _ in rows]
        sizes = [size for _, size, _ in rows]
        threads = [thread for _, _, thread in rows]
        for thread_ids in (None, threads):
            reference = IdempotentFilter(IFConfig(num_entries=16, associativity=2))
            expected_misses = []
            for row in range(len(rows)):
                key = (
                    (7, addresses[row], sizes[row])
                    if thread_ids is None
                    else (7, addresses[row], sizes[row], thread_ids[row])
                )
                if not reference.lookup_insert(key):
                    expected_misses.append(row)
            batched = IdempotentFilter(IFConfig(num_entries=16, associativity=2))
            misses = batched.filter_address_run(
                7, addresses, sizes, list(range(len(rows))), thread_ids
            )
            assert misses == expected_misses
            assert batched.stats == reference.stats
            assert batched._sets == reference._sets
