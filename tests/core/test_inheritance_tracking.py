"""Tests for the unary Inheritance Tracking state machine (Section 4)."""

import pytest

from repro.core.config import ITConfig
from repro.core.events import EventType, InstructionRecord
from repro.core.inheritance_tracking import InheritanceTracker, ITState


def record(event_type, **kwargs):
    return InstructionRecord(pc=0x1000, event_type=event_type, **kwargs)


@pytest.fixture
def it():
    return InheritanceTracker(ITConfig(num_registers=8))


class TestBasicTransitions:
    def test_imm_to_reg_clears_and_discards(self, it):
        it._set_addr(0, 0x100, 4)
        assert it.process(record(EventType.IMM_TO_REG, dest_reg=0)) == []
        assert it.state_of(0) is ITState.CLEAR

    def test_mem_to_reg_sets_addr_and_discards(self, it):
        delivered = it.process(record(EventType.MEM_TO_REG, dest_reg=2, src_addr=0x200, size=4))
        assert delivered == []
        assert it.state_of(2) is ITState.ADDR
        assert it.entry(2).address == 0x200

    def test_reg_self_keeps_inheritance(self, it):
        it.process(record(EventType.MEM_TO_REG, dest_reg=1, src_addr=0x300, size=4))
        assert it.process(record(EventType.REG_SELF, dest_reg=1)) == []
        assert it.state_of(1) is ITState.ADDR
        assert it.entry(1).address == 0x300

    def test_mem_self_discarded(self, it):
        assert it.process(record(EventType.MEM_SELF, dest_addr=0x50, size=4,
                                 is_load=True, is_store=True)) == []

    def test_imm_to_mem_delivered(self, it):
        delivered = it.process(record(EventType.IMM_TO_MEM, dest_addr=0x80, size=4, is_store=True))
        assert len(delivered) == 1
        assert delivered[0].event_type is EventType.IMM_TO_MEM

    def test_mem_to_mem_delivered(self, it):
        delivered = it.process(
            record(EventType.MEM_TO_MEM, dest_addr=0x80, src_addr=0x40, size=8,
                   is_load=True, is_store=True)
        )
        assert len(delivered) == 1
        assert delivered[0].event_type is EventType.MEM_TO_MEM


class TestRegToReg:
    def test_clean_source_clears_dest(self, it):
        it._set_addr(3, 0x900, 4)
        assert it.process(record(EventType.REG_TO_REG, dest_reg=3, src_reg=0)) == []
        assert it.state_of(3) is ITState.CLEAR

    def test_addr_source_copies_inheritance(self, it):
        it.process(record(EventType.MEM_TO_REG, dest_reg=0, src_addr=0x700, size=2))
        assert it.process(record(EventType.REG_TO_REG, dest_reg=4, src_reg=0)) == []
        assert it.state_of(4) is ITState.ADDR
        assert it.entry(4).address == 0x700

    def test_in_lifeguard_source_delivers(self, it):
        it._set_in_lifeguard(1)
        delivered = it.process(record(EventType.REG_TO_REG, dest_reg=2, src_reg=1))
        assert len(delivered) == 1
        assert delivered[0].event_type is EventType.REG_TO_REG
        assert it.state_of(2) is ITState.IN_LIFEGUARD


class TestRegToMem:
    def test_clean_source_transformed_to_imm_to_mem(self, it):
        delivered = it.process(
            record(EventType.REG_TO_MEM, src_reg=0, dest_addr=0x500, size=4, is_store=True)
        )
        assert [e.event_type for e in delivered] == [EventType.IMM_TO_MEM]

    def test_addr_source_transformed_to_mem_to_mem(self, it):
        it.process(record(EventType.MEM_TO_REG, dest_reg=0, src_addr=0x123, size=4))
        delivered = it.process(
            record(EventType.REG_TO_MEM, src_reg=0, dest_addr=0x500, size=4, is_store=True)
        )
        assert [e.event_type for e in delivered] == [EventType.MEM_TO_MEM]
        assert delivered[0].src_addr == 0x123
        assert delivered[0].dest_addr == 0x500

    def test_in_lifeguard_source_delivers_original(self, it):
        it._set_in_lifeguard(5)
        delivered = it.process(
            record(EventType.REG_TO_MEM, src_reg=5, dest_addr=0x500, size=4, is_store=True)
        )
        assert [e.event_type for e in delivered] == [EventType.REG_TO_MEM]


class TestNonUnaryOperations:
    def test_clean_source_discarded(self, it):
        assert it.process(record(EventType.DEST_REG_OP_REG, dest_reg=0, src_reg=1)) == []

    def test_addr_source_transformed_and_dest_cleared(self, it):
        it.process(record(EventType.MEM_TO_REG, dest_reg=1, src_addr=0x800, size=4))
        it._set_addr(0, 0x900, 4)
        delivered = it.process(record(EventType.DEST_REG_OP_REG, dest_reg=0, src_reg=1))
        assert [e.event_type for e in delivered] == [EventType.DEST_REG_OP_MEM]
        assert delivered[0].src_addr == 0x800
        assert it.state_of(0) is ITState.CLEAR

    def test_in_lifeguard_source_delivers_original(self, it):
        it._set_in_lifeguard(1)
        delivered = it.process(record(EventType.DEST_REG_OP_REG, dest_reg=0, src_reg=1))
        assert [e.event_type for e in delivered] == [EventType.DEST_REG_OP_REG]

    def test_dest_reg_op_mem_always_delivered(self, it):
        delivered = it.process(
            record(EventType.DEST_REG_OP_MEM, dest_reg=0, src_addr=0x100, size=4, is_load=True)
        )
        assert len(delivered) == 1
        assert it.state_of(0) is ITState.CLEAR

    def test_dest_mem_op_reg_clean_source_discarded(self, it):
        assert it.process(
            record(EventType.DEST_MEM_OP_REG, src_reg=0, dest_addr=0x100, size=4,
                   is_load=True, is_store=True)
        ) == []


class TestConflictDetection:
    def test_store_over_inherited_address_flushes_register(self, it):
        it.process(record(EventType.MEM_TO_REG, dest_reg=0, src_addr=0x1000, size=4))
        delivered = it.process(record(EventType.IMM_TO_MEM, dest_addr=0x1000, size=4, is_store=True))
        assert [e.event_type for e in delivered] == [EventType.MEM_TO_REG, EventType.IMM_TO_MEM]
        assert delivered[0].dest_reg == 0
        assert it.state_of(0) is ITState.IN_LIFEGUARD
        assert it.stats.conflict_flushes == 1

    def test_partial_overlap_detected(self, it):
        it.process(record(EventType.MEM_TO_REG, dest_reg=0, src_addr=0x1002, size=4))
        delivered = it.process(record(EventType.IMM_TO_MEM, dest_addr=0x1004, size=2, is_store=True))
        assert delivered[0].event_type is EventType.MEM_TO_REG

    def test_disjoint_store_does_not_flush(self, it):
        it.process(record(EventType.MEM_TO_REG, dest_reg=0, src_addr=0x1000, size=4))
        delivered = it.process(record(EventType.IMM_TO_MEM, dest_addr=0x2000, size=4, is_store=True))
        assert [e.event_type for e in delivered] == [EventType.IMM_TO_MEM]
        assert it.state_of(0) is ITState.ADDR

    def test_source_register_excluded_from_conflict(self, it):
        # storing a register back to the very slot it inherits from must not
        # generate an extra flush (the delivered copy already covers it)
        it.process(record(EventType.MEM_TO_REG, dest_reg=0, src_addr=0x1000, size=4))
        delivered = it.process(
            record(EventType.REG_TO_MEM, src_reg=0, dest_addr=0x1000, size=4, is_store=True)
        )
        assert [e.event_type for e in delivered] == [EventType.MEM_TO_MEM]


class TestOtherAndFlush:
    def test_other_flushes_addr_registers(self, it):
        it.process(record(EventType.MEM_TO_REG, dest_reg=0, src_addr=0x10, size=4))
        it.process(record(EventType.MEM_TO_REG, dest_reg=3, src_addr=0x20, size=4))
        delivered = it.process(record(EventType.OTHER, dest_reg=1))
        types = [e.event_type for e in delivered]
        assert types.count(EventType.MEM_TO_REG) == 2
        assert types[-1] is EventType.OTHER
        assert it.state_of(0) is ITState.IN_LIFEGUARD
        assert it.state_of(3) is ITState.IN_LIFEGUARD

    def test_reset_clears_everything(self, it):
        it.process(record(EventType.MEM_TO_REG, dest_reg=0, src_addr=0x10, size=4))
        it.reset()
        assert all(it.state_of(reg) is ITState.CLEAR for reg in range(8))


class TestFigure4Example:
    def test_figure4_event_reduction(self, it):
        """The 9-instruction example of Figure 4: IT delivers only 2 events."""
        a, b, c, d, e, f = 0x100, 0x104, 0x108, 0x10C, 0x110, 0x114
        eax, ecx = 0, 2
        sequence = [
            record(EventType.MEM_TO_REG, dest_reg=eax, src_addr=a, size=4, is_load=True),
            record(EventType.DEST_REG_OP_MEM, dest_reg=eax, src_addr=b, size=4, is_load=True),
            record(EventType.REG_SELF, dest_reg=eax),
            record(EventType.MEM_TO_REG, dest_reg=ecx, src_addr=c, size=4, is_load=True),
            record(EventType.REG_SELF, dest_reg=ecx),
            record(EventType.DEST_REG_OP_REG, dest_reg=eax, src_reg=ecx),
            record(EventType.REG_TO_MEM, src_reg=eax, dest_addr=d, size=4, is_store=True),
            record(EventType.MEM_TO_REG, dest_reg=eax, src_addr=e, size=4, is_load=True),
            record(EventType.REG_TO_MEM, src_reg=eax, dest_addr=f, size=4, is_store=True),
        ]
        delivered = [event for rec in sequence for event in it.process(rec)]
        # Instruction (2) is a dest_reg_op_mem which IT must deliver so the
        # lifeguard can check the memory source; instructions (6), (7) and
        # (9) collapse as in the paper: (6) becomes a transformed event only
        # because %ecx inherits from C, (7) becomes imm_to_mem (clean result),
        # and (9) becomes the mem_to_mem copy E->F shown in Figure 4.
        types = [event.event_type for event in delivered]
        assert types[-1] is EventType.MEM_TO_MEM
        assert delivered[-1].src_addr == e and delivered[-1].dest_addr == f
        assert EventType.IMM_TO_MEM in types  # the store to D with a clean result
        assert len(delivered) <= 4
        assert it.stats.events_seen == 9

    def test_reduction_statistic(self, it):
        for _ in range(10):
            it.process(record(EventType.MEM_TO_REG, dest_reg=0, src_addr=0x100, size=4))
        assert it.stats.reduction == 1.0
