"""Tests for the Metadata-TLB and the LMA instruction family (Section 6)."""

import pytest

from repro.core.config import MTLBConfig
from repro.core.mtlb import LMAConfig, MetadataTLB, MTLBMiss


def make_mtlb(entries=4, level1_bits=16, level2_bits=14, element_size=1):
    mtlb = MetadataTLB(MTLBConfig(num_entries=entries))
    fills = {}

    def miss_handler(app_address):
        level1 = app_address >> (32 - level1_bits)
        return fills.setdefault(level1, 0x6000_0000 + len(fills) * 0x1_0000)

    mtlb.lma_config(
        LMAConfig(level1_bits=level1_bits, level2_bits=level2_bits, element_size=element_size),
        miss_handler,
    )
    return mtlb


class TestLMAConfig:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            LMAConfig(level1_bits=0)
        with pytest.raises(ValueError):
            LMAConfig(level1_bits=20, level2_bits=14)
        with pytest.raises(ValueError):
            LMAConfig(element_size=3)

    def test_index_extraction(self):
        config = LMAConfig(level1_bits=16, level2_bits=14, element_size=1)
        assert config.offset_bits == 2
        assert config.level1_index(0xB3FB_703A) == 0xB3FB
        assert config.level2_index(0xB3FB_703A) == (0x703A >> 2)

    def test_requires_config_before_lma(self):
        mtlb = MetadataTLB()
        with pytest.raises(RuntimeError):
            mtlb.lma(0x1000)


class TestTranslation:
    def test_miss_then_hit(self):
        mtlb = make_mtlb()
        addr = 0x0900_1234
        meta1, hit1 = mtlb.lma(addr)
        meta2, hit2 = mtlb.lma(addr)
        assert hit1 is False and hit2 is True
        assert meta1 == meta2
        assert mtlb.stats.misses == 1 and mtlb.stats.hits == 1

    def test_translation_matches_geometry(self):
        mtlb = make_mtlb(element_size=1)
        addr = 0x0900_0000 + 0x40
        metadata, _ = mtlb.lma(addr)
        # same chunk, consecutive element: 4 application bytes per element
        metadata2, _ = mtlb.lma(addr + 4)
        assert metadata2 == metadata + 1

    def test_element_size_scales_offsets(self):
        mtlb = make_mtlb(element_size=8)
        base, _ = mtlb.lma(0x0900_0000)
        nxt, _ = mtlb.lma(0x0900_0004)
        assert nxt - base == 8

    def test_lru_replacement(self):
        mtlb = make_mtlb(entries=2, level1_bits=16)
        regions = [0x0900_0000, 0x0A00_0000, 0x0B00_0000]
        for region in regions:
            mtlb.lma(region)
        assert mtlb.resident_entries() == 2
        # the first region was evicted, so translating it misses again
        _, hit = mtlb.lma(regions[0])
        assert hit is False

    def test_same_chunk_addresses_share_entry(self):
        mtlb = make_mtlb(entries=2)
        mtlb.lma(0x0900_0000)
        _, hit = mtlb.lma(0x0900_0FFC)
        assert hit is True

    def test_lma_config_flushes(self):
        mtlb = make_mtlb()
        mtlb.lma(0x0900_0000)
        mtlb.lma_config(LMAConfig(level1_bits=12, level2_bits=18, element_size=1))
        assert mtlb.resident_entries() == 0
        assert mtlb.stats.flushes == 2

    def test_miss_without_handler_raises(self):
        mtlb = MetadataTLB(MTLBConfig(num_entries=4))
        mtlb.lma_config(LMAConfig())
        with pytest.raises(MTLBMiss):
            mtlb.lma(0x1000)

    def test_explicit_lma_fill(self):
        mtlb = MetadataTLB(MTLBConfig(num_entries=4))
        mtlb.lma_config(LMAConfig(level1_bits=16, level2_bits=14, element_size=1))
        mtlb.lma_fill(0x0900_0000, 0x7000_0000)
        metadata, hit = mtlb.lma(0x0900_0008)
        assert hit is True
        assert metadata == 0x7000_0000 + 2

    def test_miss_rate(self):
        mtlb = make_mtlb()
        for _ in range(3):
            mtlb.lma(0x0900_0000)
        assert mtlb.stats.miss_rate == pytest.approx(1 / 3)


class TestLMARun:
    """Batched translation must mirror a scalar lma() loop exactly."""

    def test_lma_run_matches_scalar_loop(self):
        def handler(app_address):
            return 0x6000_0000 + (app_address & 0xFFFF_C000)

        scalar = MetadataTLB(MTLBConfig(num_entries=4))
        scalar.lma_config(LMAConfig(16, 14, 1), miss_handler=handler)
        batched = MetadataTLB(MTLBConfig(num_entries=4))
        batched.lma_config(LMAConfig(16, 14, 1), miss_handler=handler)

        start, stop, step = 0x0900_0000, 0x0900_0000 + 64 * 4096, 4096
        expected = [scalar.lma(address)[0] for address in range(start, stop, step)]
        out = []
        translations, misses = batched.lma_run(start, stop, step, out)
        assert out == expected
        assert translations == len(expected)
        assert misses == scalar.stats.misses
        assert batched.stats == scalar.stats
        assert batched._entries == scalar._entries

    def test_lma_run_miss_without_handler_counts_attempts(self):
        mtlb = MetadataTLB(MTLBConfig(num_entries=4))
        mtlb.lma_config(LMAConfig(16, 14, 1))
        mtlb.lma_fill(0x0900_0000, 0x6000_0000)
        fills = mtlb.stats.fills
        out = []
        with pytest.raises(MTLBMiss):
            # first address hits the filled entry, the second (new level-1
            # index) misses with no handler installed
            mtlb.lma_run(0x0900_0000, 0x0900_0000 + 2 * (1 << 16), 1 << 16, out)
        assert len(out) == 1
        assert mtlb.stats.lookups == 2
        assert mtlb.stats.hits == 1
        assert mtlb.stats.misses == 1
        assert mtlb.stats.fills == fills
