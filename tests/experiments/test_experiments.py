"""Tests for the experiment harness (figure regeneration)."""

import pytest

from repro.analysis.profiler import Profiler
from repro.experiments.figure02 import format_figure02, run_figure02
from repro.experiments.figure10 import format_figure10, run_figure10
from repro.experiments.figure11 import format_figure11, run_figure11
from repro.experiments.figure12 import format_figure12, run_figure12
from repro.experiments.figure13 import format_figure13, run_figure13
from repro.experiments.figure14 import format_figure14, run_figure14
from repro.experiments.harness import TECHNIQUE_STACKS
from repro.experiments.reporting import format_table, range_string

SCALE = 0.3
SPEC_SUBSET = ["bzip2", "gcc"]
LIFEGUARD_SUBSET = ["AddrCheck", "TaintCheck"]


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xyz", 3]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "xyz" in lines[3]

    def test_range_string(self):
        assert range_string([0.1, 0.5]) == "10.0%-50.0%"
        assert range_string([]) == "n/a"


class TestFigure02:
    def test_matrix_matches_paper(self):
        matrix = run_figure02()
        assert matrix["AddrCheck"] == {"IT": False, "IF": True, "M-TLB": True}
        assert matrix["MemCheck"] == {"IT": True, "IF": True, "M-TLB": True}
        assert matrix["TaintCheck"] == {"IT": True, "IF": False, "M-TLB": True}
        assert matrix["TaintCheckDetailed"] == {"IT": True, "IF": False, "M-TLB": True}
        assert matrix["LockSet"] == {"IT": False, "IF": True, "M-TLB": True}

    def test_formatting(self):
        assert "Figure 2" in format_figure02(run_figure02())


class TestFigure10:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure10(lifeguards=LIFEGUARD_SUBSET, benchmarks=SPEC_SUBSET, scale=SCALE)

    def test_structure(self, result):
        assert set(result.slowdowns) == set(LIFEGUARD_SUBSET)
        for configs in result.slowdowns.values():
            assert set(configs) == {"LBA Baseline", "LBA Optimized"}
            for per_benchmark in configs.values():
                assert set(per_benchmark) == set(SPEC_SUBSET)

    def test_optimized_improves_on_baseline(self, result):
        for lifeguard in LIFEGUARD_SUBSET:
            assert result.average(lifeguard, "LBA Optimized") < result.average(
                lifeguard, "LBA Baseline"
            )
            assert result.improvement(lifeguard) > 1.2

    def test_no_errors_on_clean_benchmarks(self, result):
        for per_config in result.errors.values():
            for per_benchmark in per_config.values():
                assert all(count == 0 for count in per_benchmark.values())

    def test_formatting(self, result):
        text = format_figure10(result)
        assert "Figure 10" in text and "Avg" in text


class TestFigure11:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure11(lifeguards=["TaintCheck", "AddrCheck"], benchmarks=SPEC_SUBSET,
                            scale=SCALE)

    def test_stack_labels_match_figure2(self, result):
        assert list(result.averages["TaintCheck"]) == ["BASE", "LMA", "LMA+IT"]
        assert list(result.averages["AddrCheck"]) == ["BASE", "LMA", "LMA+IF"]

    def test_each_technique_helps(self, result):
        for lifeguard in result.averages:
            assert result.monotonic_improvement(lifeguard), result.averages[lifeguard]

    def test_technique_stacks_cover_all_lifeguards(self):
        assert set(TECHNIQUE_STACKS) == {
            "AddrCheck", "MemCheck", "TaintCheck", "TaintCheckDetailed", "LockSet",
        }

    def test_formatting(self, result):
        assert "Figure 11" in format_figure11(result)


class TestFigure12:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure12(lifeguards=["MemCheck"], benchmarks=SPEC_SUBSET, scale=SCALE)

    def test_reductions_positive(self, result):
        for value in result.lma_instruction_reduction["MemCheck"].values():
            assert 0.0 < value < 1.0
        for value in result.it_update_reduction["MemCheck"].values():
            assert 0.0 < value < 1.0
        for value in result.if_check_reduction["MemCheck"].values():
            assert 0.0 < value < 1.0

    def test_formatting(self, result):
        text = format_figure12(result)
        assert "Figure 12" in text and "MemCheck" in text


class TestFigures13And14:
    @pytest.fixture(scope="class")
    def profiler(self):
        return Profiler()

    def test_figure13(self, profiler):
        result = run_figure13(benchmarks=SPEC_SUBSET, scale=SCALE, entries=(8, 32),
                              associativities=(0, 4), profiler=profiler)
        assert set(result.it_reduction) == set(SPEC_SUBSET)
        assert all(0 < v < 1 for v in result.it_reduction.values())
        assert result.if_combined[0][32] >= result.if_combined[0][8] - 0.02
        assert "Figure 13" in format_figure13(result)

    def test_figure14(self, profiler):
        result = run_figure14(benchmarks=SPEC_SUBSET, scale=SCALE,
                              level1_bits=(20, 12), entries=(16, 64), profiler=profiler)
        assert set(result.design_space) == {16, 64}
        for per_bits in result.design_space.values():
            assert set(per_bits) == {20, 12}
            for stats in per_bits.values():
                assert 0.0 <= stats["avg"] <= stats["max"] <= 1.0
        assert set(result.fixed_vs_flexible) == set(SPEC_SUBSET)
        assert "Figure 14" in format_figure14(result)
