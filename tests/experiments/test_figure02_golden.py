"""Golden-file regression for the Figure 2 experiment.

The applicability matrix is a pure function of the lifeguard registry
(no seeds involved; running it twice is trivially pinned), so its exact
rendered output is committed under ``golden/`` and any drift -- a new
lifeguard, a changed applicability flag, a formatting change -- fails CI
instead of waiting for someone to eyeball a regenerated figure.

To refresh after an intentional change::

    PYTHONPATH=src python -c "
    from repro.experiments.figure02 import format_figure02, run_figure02
    open('tests/experiments/golden/figure02.txt', 'w').write(
        format_figure02(run_figure02()) + '\\n')"
"""

import os

from repro.experiments.figure02 import format_figure02, run_figure02

GOLDEN = os.path.join(os.path.dirname(__file__), "golden", "figure02.txt")


def test_figure02_matches_golden_file():
    with open(GOLDEN, encoding="utf-8") as handle:
        expected = handle.read()
    assert format_figure02(run_figure02()) + "\n" == expected


def test_figure02_is_deterministic():
    first = run_figure02()
    second = run_figure02()
    assert first == second
    assert list(first) == list(second)  # row order is part of the figure
