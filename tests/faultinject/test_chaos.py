"""Chaos-suite tests: every fault-tolerance invariant holds end to end.

Runs the real scenario registry (worker SIGKILL / ``os._exit`` / hang /
IO error, poison chunks, corrupt bytes, truncation) against a seeded
workload trace through actual supervised worker processes -- the same
suite CI runs via ``python -m repro.faultinject``.
"""

import json

import pytest

from repro.faultinject.chaos import SCENARIOS, build_chaos_trace, run_chaos
from repro.faultinject.cli import main as chaos_cli
from repro.trace.tracefile import TraceReader

#: One full-suite run per module: the scenarios are independent (each
#: gets its own trace copy / claim dir) so a single document covers all.
CHAOS_SEED = 0


@pytest.fixture(scope="module")
def chaos_report(tmp_path_factory):
    workdir = tmp_path_factory.mktemp("chaos")
    return run_chaos(CHAOS_SEED, str(workdir))


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_invariant_holds(chaos_report, name):
    (scenario,) = [s for s in chaos_report["scenarios"] if s["name"] == name]
    assert scenario["ok"], f"{name}: {scenario['failure']}"


def test_report_document_shape(chaos_report):
    assert chaos_report["ok"]
    assert chaos_report["seed"] == CHAOS_SEED
    assert chaos_report["trace"]["chunks"] >= 4  # sharding must be meaningful
    assert chaos_report["trace"]["records"] > 0
    assert len(chaos_report["scenarios"]) == len(SCENARIOS)
    json.dumps(chaos_report)  # CI uploads this: must be JSON-able


def test_chaos_trace_is_deterministic(tmp_path):
    first = str(tmp_path / "a.lbatrace")
    second = str(tmp_path / "b.lbatrace")
    assert build_chaos_trace(first, seed=3) == build_chaos_trace(second, seed=3)
    with TraceReader(first) as one, TraceReader(second) as two:
        assert [(c.records, c.crc) for c in one.chunks] == [
            (c.records, c.crc) for c in two.chunks
        ]


def test_unknown_scenario_rejected(tmp_path):
    with pytest.raises(ValueError, match="unknown scenario"):
        run_chaos(0, str(tmp_path), scenarios=["warp_core_breach"])


class TestCli:
    def test_list_prints_registry(self, capsys):
        assert chaos_cli(["--list"]) == 0
        assert capsys.readouterr().out.split() == list(SCENARIOS)

    def test_single_scenario_run_and_json_artifact(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        rc = chaos_cli([
            "--seed", "0", "--scenarios", "truncation_detected",
            "--workdir", str(tmp_path / "work"), "--json", str(report_path),
        ])
        assert rc == 0
        assert "all invariants held" in capsys.readouterr().out
        with open(report_path) as handle:
            document = json.load(handle)
        assert [s["name"] for s in document["scenarios"]] == ["truncation_detected"]
        assert document["ok"]
