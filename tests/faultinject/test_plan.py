"""Fault-plan tests: seeded determinism and exact cross-process firing.

Only the in-process kinds (``io_error``, ``hang``) are *executed* here --
``sigkill``/``os._exit`` would take the test runner down with them; their
end-to-end behaviour is exercised by the chaos scenarios under a real
supervisor (see ``test_chaos.py``).
"""

import os

import pytest

from repro.faultinject import FAULT_KINDS, FaultPlan, FaultSpec


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind must be one of"):
            FaultSpec(kind="meteor", chunk=0)

    def test_nonpositive_times_rejected(self):
        for bad in (0, -1):
            with pytest.raises(ValueError, match="times must be >= 1 or None"):
                FaultSpec(kind="io_error", chunk=0, times=bad)

    def test_poison_times_none_allowed(self):
        assert FaultSpec(kind="sigkill", chunk=3, times=None).times is None


class TestSeededTargeting:
    def test_same_seed_same_plan(self, tmp_path):
        build = lambda: FaultPlan.from_seed(
            str(tmp_path), seed=42, num_chunks=20, faults=3
        )
        assert build().specs == build().specs

    def test_different_seeds_diverge(self, tmp_path):
        plans = {
            FaultPlan.from_seed(str(tmp_path), seed=seed, num_chunks=50, faults=2).specs
            for seed in range(8)
        }
        assert len(plans) > 1

    def test_targets_are_distinct_and_in_range(self, tmp_path):
        plan = FaultPlan.from_seed(str(tmp_path), seed=7, num_chunks=10, faults=4)
        chunks = [spec.chunk for spec in plan.specs]
        assert len(set(chunks)) == len(chunks) == 4
        assert all(0 <= chunk < 10 for chunk in chunks)
        assert all(spec.kind in FAULT_KINDS for spec in plan.specs)

    def test_faults_clamped_to_chunk_count(self, tmp_path):
        plan = FaultPlan.from_seed(str(tmp_path), seed=0, num_chunks=2, faults=9)
        assert len(plan.specs) == 2

    def test_empty_trace_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no chunks"):
            FaultPlan.from_seed(str(tmp_path), seed=0, num_chunks=0)


class TestClaimSemantics:
    def test_times_n_fires_exactly_n(self, tmp_path):
        plan = FaultPlan.single(str(tmp_path), "io_error", chunk=5, times=2)
        for _ in range(2):
            with pytest.raises(OSError, match="injected IO error reading chunk 5"):
                plan.fire(5)
        # Both slots are spent: further attempts pass straight through.
        for _ in range(5):
            plan.fire(5)
        assert plan.fired() == 2
        assert plan.fired(0) == 2

    def test_other_chunks_unaffected(self, tmp_path):
        plan = FaultPlan.single(str(tmp_path), "io_error", chunk=5, times=1)
        for chunk in (0, 4, 6):
            plan.fire(chunk)
        assert plan.fired() == 0

    def test_claims_shared_across_plan_copies(self, tmp_path):
        """Two plan objects over the same state_dir share the budget --
        the property that makes ``times`` exact across worker processes."""
        first = FaultPlan.single(str(tmp_path), "io_error", chunk=0, times=1)
        second = FaultPlan.single(str(tmp_path), "io_error", chunk=0, times=1)
        with pytest.raises(OSError):
            first.fire(0)
        second.fire(0)  # budget already spent by the sibling
        assert second.fired() == 1

    def test_claim_file_records_pid(self, tmp_path):
        plan = FaultPlan.single(str(tmp_path), "io_error", chunk=0, times=1)
        with pytest.raises(OSError):
            plan.fire(0)
        (claim,) = [name for name in os.listdir(tmp_path) if name.endswith(".claim")]
        assert claim == "fault0_try0.claim"
        with open(tmp_path / claim) as handle:
            assert int(handle.read()) == os.getpid()

    def test_poison_fires_every_time_without_claims(self, tmp_path):
        plan = FaultPlan.single(str(tmp_path), "io_error", chunk=1, times=None)
        for _ in range(3):
            with pytest.raises(OSError):
                plan.fire(1)
        assert plan.fired() == 0  # poison specs never claim

    def test_hang_sleeps_for_configured_duration(self, tmp_path):
        import time

        plan = FaultPlan.single(str(tmp_path), "hang", chunk=0, times=1,
                                hang_seconds=0.05)
        start = time.perf_counter()
        plan.fire(0)
        assert time.perf_counter() - start >= 0.05
        plan.fire(0)  # second attempt: budget spent, returns immediately
