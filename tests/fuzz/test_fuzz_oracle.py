"""Tier-1 differential-fuzzing block plus oracle mutation smoke tests.

Every seed of the tier-1 block runs the full engine matrix: per-record
``consume`` (reference), ``consume_batch``, ``consume_each``, the columnar
engine, a trace-file round-trip replay, the live dual-core platform, and
the multi-core platform at N in {1, 2, 4} -- asserting bit-identical
reports/stats/cycles (and internal IT/IF/M-TLB state for the in-process
record legs), manifest-driven bug detection, and clean-seed silence.

The mutation tests prove the oracle has teeth: a deliberately broken
dispatch path must be *caught* as a :class:`FuzzFailure`, not slip
through.  If one of those starts passing without raising, the oracle has
gone blind -- treat it as a release blocker.
"""

import pytest

from repro.core.events import EventType
from repro.fuzz import FuzzFailure, run_seed
from repro.lba.dispatch import EventDispatcher
from repro.lifeguards.memcheck import MemCheck

#: The tier-1 seed block (CI runs the same range through the CLI).
TIER1_SEEDS = range(25)


@pytest.mark.parametrize("seed", TIER1_SEEDS)
def test_tier1_seed_block(seed):
    """Every engine pairing agrees and ground truth holds for this seed."""
    result = run_seed(seed)
    assert result.records > 0
    if result.bug:
        assert result.detected_by, f"bug seed {seed} detected by nobody"
    else:
        assert all(count == 0 for count in result.reports_by_lifeguard.values())


class TestOracleCatchesMutations:
    """Deliberately broken handlers must fail the oracle, not pass it."""

    def test_broken_columnar_span_handler_is_caught(self, monkeypatch):
        """A span fast path that skips the access check diverges columnar
        dispatch from the scalar reference and must be flagged."""
        original = MemCheck.columnar_handlers

        def broken(self):
            handlers = dict(original(self))
            handlers[EventType.MEM_LOAD] = (lambda address, size, pc, thread_id: None, False)
            return handlers

        monkeypatch.setattr(MemCheck, "columnar_handlers", broken)
        with pytest.raises(FuzzFailure) as excinfo:
            run_seed(3, engines=("consume", "columnar"), lifeguards=["MemCheck"])
        assert excinfo.value.leg == "columnar"
        assert excinfo.value.lifeguard == "MemCheck"

    def test_record_dropping_batch_dispatch_is_caught(self, monkeypatch):
        original = EventDispatcher.consume_batch

        def dropping(self, records):
            materialized = list(records)
            return original(self, materialized[:-1])  # silently drop one record

        monkeypatch.setattr(EventDispatcher, "consume_batch", dropping)
        with pytest.raises(FuzzFailure) as excinfo:
            run_seed(0, engines=("consume", "consume_batch"), lifeguards=["MemCheck"])
        assert excinfo.value.leg == "consume_batch"

    def test_miscounted_cycles_are_caught(self, monkeypatch):
        original = EventDispatcher.consume_each

        def inflated(self, records):
            per_record = original(self, records)
            if per_record:
                per_record[-1] += 1  # off-by-one in the last record's cycles
            return per_record

        monkeypatch.setattr(EventDispatcher, "consume_each", inflated)
        with pytest.raises(FuzzFailure) as excinfo:
            run_seed(0, engines=("consume", "consume_each"), lifeguards=["AddrCheck"])
        assert excinfo.value.leg == "consume_each"


class TestFaultInjectionLeg:
    """--inject-faults: the oracle proves damage is *reported*, not eaten."""

    @pytest.mark.parametrize("seed", [0, 3])
    def test_damaged_trace_leg_passes_on_healthy_tree(self, seed):
        result = run_seed(seed, engines=("consume", "trace_replay"),
                          lifeguards=["MemCheck"], inject_faults=True)
        assert result.records > 0
        assert "fault_inject" in result.leg_seconds
        assert "fault_replay" in result.leg_seconds

    def test_swallowed_quarantine_is_caught(self, monkeypatch):
        """If degrade-mode replay stops reporting skipped chunks, the
        fault leg must flag it -- the oracle's teeth for fault handling."""
        from repro.trace import replay as replay_module

        original = replay_module.replay_trace

        def amnesiac(trace_path, lifeguard, config=None, quarantine="strict"):
            result = original(trace_path, lifeguard, config, quarantine)
            result.skipped_chunks = []  # silently forget the damage
            return result

        monkeypatch.setattr("repro.fuzz.oracle.replay_trace", amnesiac)
        with pytest.raises(FuzzFailure) as excinfo:
            run_seed(0, engines=("consume",), lifeguards=["MemCheck"],
                     inject_faults=True)
        assert excinfo.value.leg == "fault_replay"


class TestOracleInputValidation:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            run_seed(0, engines=("consume", "warp_drive"))

    def test_unknown_lifeguard_rejected(self):
        with pytest.raises(KeyError):
            run_seed(0, lifeguards=["NotALifeguard"])
