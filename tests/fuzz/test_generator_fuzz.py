"""The fuzz program generator: determinism, structure, bug injection.

The golden digests pin the *exact* lowered instruction streams of fixed
seeds.  Because every random decision is drawn from ``random.Random(seed)``
(whose Mersenne-Twister sequence and ``randrange``/``choices`` algorithms
are stable across CPython versions) and lowering iterates only ordered
containers, these digests must never change without a deliberate generator
change -- a drift here means seeds stopped being portable and every stored
repro file is invalidated.
"""

import random

import pytest

from repro.workloads.generator import (
    BUG_CLASSES,
    FuzzConfig,
    FuzzProgramSpec,
    build_fuzz_programs,
    generate_spec,
    manifest_for,
    profile_for_seed,
    program_digest,
    spec_digest,
)

#: seed -> sha256 of the lowered programs (regenerate only on deliberate
#: generator changes, and say so in the commit message).
GOLDEN_DIGESTS = {
    0: "c25b43cac3faeaa2c1433801b9c20e6656d7947653b3f8f8f88d08d3d41a8663",
    1: "58191f91304a62bac1dc7cc7e9106312402d76f4ee2707cc738d606e63e56d20",
    2: "e6b51553182ac24b80d6efa2d918df3d40ab4b60aa6b722b4334e63ca0a96f89",
    3: "fdb45701bbe78020ec230c1b90dcd518ccf237719ed0ab3116358ce92e9df3f6",
    4: "071580a9185a63bbfee603964a7eba163bc9520b6a15ab722cfa97148fbce551",
    5: "4ae6f625ffb08515713651aed4ca42b053eb22c6fe5ad27ea65180c3c2c9c357",
    6: "3a79b44ed0c245fa60be181a387c7df2152576b413ebbbf752284e8c032b39b4",
    7: "26a644b8c4c23e1fa529191bb2150e9e4ccd4282eebba98af4bfd8ab082f449f",
}


class TestDeterminism:
    @pytest.mark.parametrize("seed", sorted(GOLDEN_DIGESTS))
    def test_golden_seed_digest(self, seed):
        assert spec_digest(generate_spec(seed)) == GOLDEN_DIGESTS[seed]

    def test_same_seed_same_spec_and_programs(self):
        first, second = generate_spec(42), generate_spec(42)
        assert first == second
        assert program_digest(build_fuzz_programs(first)) == program_digest(
            build_fuzz_programs(second)
        )

    def test_different_seeds_differ(self):
        assert spec_digest(generate_spec(1)) != spec_digest(generate_spec(9))

    def test_generation_does_not_depend_on_global_random_state(self):
        random.seed(123)
        first = generate_spec(7)
        random.seed(987654)
        random.random()
        second = generate_spec(7)
        assert first == second


class TestScenarioMapping:
    def test_every_block_of_eight_covers_all_bug_classes(self):
        bugs = {generate_spec(seed).bug for seed in range(8, 16)}
        assert bugs == set(BUG_CLASSES) | {""}

    def test_tier1_block_covers_clean_and_all_bugs(self):
        specs = [generate_spec(seed) for seed in range(25)]
        assert {spec.bug for spec in specs} == set(BUG_CLASSES) | {""}
        assert any(spec.threads > 1 for spec in specs)
        assert any(spec.tainted_input for spec in specs)

    def test_profiles_force_bug_preconditions(self):
        for seed in range(64):
            config = profile_for_seed(seed)
            if config.bug == "unlocked_shared_write":
                assert config.threads >= 2
            if config.bug == "taint_to_jump":
                assert config.tainted_input

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FuzzConfig(bug="unlocked_shared_write", threads=1)
        with pytest.raises(ValueError):
            FuzzConfig(bug="taint_to_jump", tainted_input=False)
        with pytest.raises(ValueError):
            FuzzConfig(bug="no_such_bug")


class TestSpecStructure:
    def test_one_op_stream_per_thread(self):
        spec = generate_spec(9)
        assert spec.threads >= 2
        assert len(spec.ops) == spec.threads
        assert len(build_fuzz_programs(spec)) == spec.threads

    def test_bug_seed_contains_exactly_one_bug_op(self):
        spec = generate_spec(3)
        bug_ops = [
            op
            for thread_ops in spec.ops
            for op in thread_ops
            if op.kind.startswith("bug_")
        ]
        assert len(bug_ops) == 1
        assert bug_ops[0].kind == f"bug_{spec.bug}"
        assert any(
            op.kind.startswith("bug_") for op in spec.ops[spec.bug_thread]
        )

    def test_manifest_ground_truth(self):
        clean = manifest_for(generate_spec(0))
        assert clean.is_clean and not clean.detectors
        race = manifest_for(generate_spec(5))
        assert race.bug == "unlocked_shared_write"
        assert race.detectors == ("LockSet",)
        assert race.kinds == ("data_race",)
        taint = manifest_for(generate_spec(6))
        assert taint.halts_early and not taint.shard_exact

    def test_spec_dict_round_trip(self):
        spec = generate_spec(13)
        assert FuzzProgramSpec.from_dict(spec.to_dict()) == spec
