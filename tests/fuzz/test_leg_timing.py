"""Per-leg wall-time accounting in the fuzz oracle and repro files."""

import json

from repro.fuzz.cli import _describe_repro, _format_leg_seconds
from repro.fuzz.oracle import FuzzCase, FuzzFailure, run_case
from repro.fuzz.shrink import save_repro


def test_run_case_records_leg_seconds():
    case = FuzzCase.from_seed(0)
    result = run_case(case, engines=["consume", "columnar"])
    assert set(result.leg_seconds) >= {"capture", "consume", "columnar"}
    assert all(seconds >= 0 for seconds in result.leg_seconds.values())


def test_repro_file_carries_leg_seconds(tmp_path):
    case = FuzzCase.from_seed(0)
    failure = FuzzFailure(0, "columnar", "MemCheck", "synthetic divergence")
    failure.leg_seconds = {"capture": 0.1, "consume": 0.2, "columnar": 0.3}
    path = save_repro(str(tmp_path / "seed_0.json"), case, failure=failure)
    document = json.loads((tmp_path / "seed_0.json").read_text())
    assert document["leg_seconds"] == {"capture": 0.1, "consume": 0.2, "columnar": 0.3}
    assert document["failure"]["leg"] == "columnar"
    assert path.endswith("seed_0.json")


def test_describe_repro_prints_leg_timing(tmp_path, capsys):
    case = FuzzCase.from_seed(0)
    path = save_repro(str(tmp_path / "seed_0.json"), case,
                      leg_seconds={"consume": 1.5, "multicore": 4.0})
    assert _describe_repro(path) == 0
    out = capsys.readouterr().out
    assert "leg wall time: multicore 4.00s, consume 1.50s" in out


def test_format_leg_seconds_sorts_slowest_first():
    text = _format_leg_seconds({"a": 0.5, "b": 2.0, "c": 1.0})
    assert text == "b 2.00s, c 1.00s, a 0.50s"
    assert _format_leg_seconds({}) == ""
    assert _format_leg_seconds(None) == ""
