"""Shrinking by instruction-window bisection and replayable repro files."""

import json
import os

import pytest

from repro.fuzz import (
    FuzzCase,
    load_repro,
    replay_repro,
    run_case,
    save_repro,
    shrink_spec,
)
from repro.isa.threads import ThreadedMachine
from repro.lba.platform import LBASystem
from repro.lifeguards import ALL_LIFEGUARDS
from repro.workloads.generator import build_fuzz_programs, manifest_for


def _detects_injected_bug(spec):
    """The failure predicate used throughout: the bug is still detected."""
    manifest = manifest_for(spec)
    detector = ALL_LIFEGUARDS[manifest.detectors[0]]()
    result = LBASystem(
        ThreadedMachine(build_fuzz_programs(spec)), detector
    ).run()
    return any(report.kind.value in manifest.kinds for report in result.reports)


class TestShrinking:
    def test_shrinks_bug_seed_to_just_the_bug_op(self):
        """Window bisection removes every random op; the injected bug op is
        the only one the predicate needs, so the minimum is exactly 1 op."""
        case = FuzzCase.from_seed(6)  # taint_to_jump
        assert _detects_injected_bug(case.spec)
        shrunk = shrink_spec(case.spec, _detects_injected_bug)
        assert shrunk.total_ops() == 1
        (only_op,) = [op for thread_ops in shrunk.ops for op in thread_ops]
        assert only_op.kind == "bug_taint_to_jump"

    def test_shrinking_is_idempotent(self):
        case = FuzzCase.from_seed(3)  # use_after_free
        shrunk = shrink_spec(case.spec, _detects_injected_bug)
        assert shrink_spec(shrunk, _detects_injected_bug) == shrunk

    def test_shrunk_spec_preserves_scenario_facts(self):
        case = FuzzCase.from_seed(5)  # unlocked_shared_write, 2 threads
        shrunk = shrink_spec(case.spec, _detects_injected_bug)
        assert shrunk.threads == case.spec.threads
        assert shrunk.bug == case.spec.bug
        assert shrunk.total_ops() < case.spec.total_ops()
        assert _detects_injected_bug(shrunk)

    def test_predicate_must_hold_initially(self):
        case = FuzzCase.from_seed(0)
        with pytest.raises(ValueError):
            shrink_spec(case.spec, lambda spec: False)

    def test_oracle_predicate_pins_the_original_failure(self, monkeypatch):
        """Shrinking a columnar divergence must not degenerate into the
        unrelated "bug not detected" failure that dropping the bug op
        causes -- the pinned predicate only accepts same-leg failures."""
        from repro.core.events import EventType
        from repro.fuzz import FuzzFailure, run_case
        from repro.fuzz.shrink import oracle_failure_predicate
        from repro.lifeguards.memcheck import MemCheck

        original = MemCheck.columnar_handlers

        def broken(self):
            handlers = dict(original(self))
            handlers[EventType.MEM_LOAD] = (
                lambda address, size, pc, thread_id: None, False)
            return handlers

        monkeypatch.setattr(MemCheck, "columnar_handlers", broken)
        case = FuzzCase.from_seed(3)  # use_after_free
        engines = ("consume", "columnar")
        with pytest.raises(FuzzFailure) as excinfo:
            run_case(case, engines=engines, lifeguards=["MemCheck"])
        predicate = oracle_failure_predicate(
            engines, ["MemCheck"], match=excinfo.value)
        shrunk = shrink_spec(case.spec, predicate)
        # the minimised program still reproduces the *columnar* divergence
        with pytest.raises(FuzzFailure) as reshrunk:
            run_case(FuzzCase.from_spec(shrunk), engines=engines,
                     lifeguards=["MemCheck"])
        assert reshrunk.value.leg == "columnar"
        assert shrunk.total_ops() <= case.spec.total_ops()


class TestReproFiles:
    def test_round_trip_and_deterministic_replay(self, tmp_path):
        case = FuzzCase.from_seed(4)
        shrunk = FuzzCase.from_spec(shrink_spec(case.spec, _detects_injected_bug))
        path = save_repro(os.fspath(tmp_path / "seed_4.json"), shrunk)
        loaded = load_repro(path)
        assert loaded.spec == shrunk.spec
        assert loaded.manifest == shrunk.manifest
        first = replay_repro(path)
        second = replay_repro(path)
        assert first.records == second.records
        assert first.reports_by_lifeguard == second.reports_by_lifeguard
        assert first.detected_by == second.detected_by
        # and the replay equals running the case directly
        direct = run_case(loaded)
        assert direct.records == first.records
        assert direct.reports_by_lifeguard == first.reports_by_lifeguard

    def test_digest_mismatch_is_rejected(self, tmp_path):
        case = FuzzCase.from_seed(3)
        path = save_repro(os.fspath(tmp_path / "seed_3.json"), case)
        with open(path) as handle:
            document = json.load(handle)
        document["digest"] = "0" * 64
        with open(path, "w") as handle:
            json.dump(document, handle)
        with pytest.raises(ValueError, match="digest mismatch"):
            load_repro(path)

    def test_unknown_version_is_rejected(self, tmp_path):
        case = FuzzCase.from_seed(3)
        path = save_repro(os.fspath(tmp_path / "seed_3.json"), case)
        with open(path) as handle:
            document = json.load(handle)
        document["version"] = 99
        with open(path, "w") as handle:
            json.dump(document, handle)
        with pytest.raises(ValueError, match="version"):
            load_repro(path)

    def test_failure_context_is_stored(self, tmp_path):
        from repro.fuzz.oracle import FuzzFailure

        case = FuzzCase.from_seed(7)
        failure = FuzzFailure(7, "columnar", "MemCheck", "synthetic divergence")
        path = save_repro(os.fspath(tmp_path / "seed_7.json"), case, failure=failure)
        with open(path) as handle:
            document = json.load(handle)
        assert document["failure"]["leg"] == "columnar"
        assert document["failure"]["lifeguard"] == "MemCheck"
