"""Tests for the ISA substrate: instructions, programs, machine semantics."""

import pytest

from repro.core.events import AnnotationRecord, EventType, InstructionRecord
from repro.isa.instructions import Cond, Imm, Instruction, Mem, Opcode, Reg, SyscallKind
from repro.isa.machine import Machine, MachineError, Trap
from repro.isa.program import Program, ProgramBuilder
from repro.isa.registers import Register, RegisterFile
from repro.isa.threads import DeadlockError, LockManager, ThreadedMachine


def run_program(builder: ProgramBuilder):
    machine = Machine(builder.build())
    trace = machine.trace()
    return machine, trace


class TestRegisterFile:
    def test_values_truncate_to_32_bits(self):
        regs = RegisterFile()
        regs.write(Register.EAX, 0x1_FFFF_FFFF)
        assert regs.read(Register.EAX) == 0xFFFF_FFFF

    def test_snapshot(self):
        regs = RegisterFile()
        regs.write(Register.EBX, 7)
        assert regs.snapshot()["EBX"] == 7


class TestProgramBuilder:
    def test_labels_resolve(self):
        b = ProgramBuilder("p")
        b.label("start")
        b.nop()
        b.jmp("start")
        program = b.build()
        assert program.index_of_label("start") == 0

    def test_duplicate_label_rejected(self):
        with pytest.raises(ValueError):
            Program("p", [Instruction(Opcode.NOP, label="x"), Instruction(Opcode.NOP, label="x")])

    def test_undefined_target_rejected(self):
        b = ProgramBuilder("p")
        b.jmp("nowhere")
        with pytest.raises(ValueError):
            b.build()

    def test_operand_validation(self):
        with pytest.raises(ValueError):
            Mem(scale=3)
        with pytest.raises(ValueError):
            Mem(size=5)
        with pytest.raises(ValueError):
            Instruction(Opcode.JCC, target="x")


class TestDataMovement:
    def test_mov_imm_and_alu(self):
        b = ProgramBuilder("p")
        b.mov(Reg(Register.EAX), Imm(10))
        b.add(Reg(Register.EAX), Imm(5))
        b.shl(Reg(Register.EAX), 2)
        b.halt()
        machine, trace = run_program(b)
        assert machine.registers.read(Register.EAX) == 60
        assert [r.event_type for r in trace[:3]] == [
            EventType.IMM_TO_REG, EventType.REG_SELF, EventType.REG_SELF,
        ]

    def test_memory_store_and_load(self):
        b = ProgramBuilder("p")
        b.mov(Reg(Register.ESI), Imm(0x0810_0000))
        b.mov(Mem(base=Register.ESI, disp=8), Imm(0x1234))
        b.mov(Reg(Register.EBX), Mem(base=Register.ESI, disp=8))
        b.halt()
        machine, trace = run_program(b)
        assert machine.registers.read(Register.EBX) == 0x1234
        store, load = trace[1], trace[2]
        assert store.event_type is EventType.IMM_TO_MEM and store.is_store
        assert load.event_type is EventType.MEM_TO_REG and load.is_load
        assert load.src_addr == 0x0810_0008
        assert load.base_reg == Register.ESI.value

    def test_scaled_index_addressing(self):
        b = ProgramBuilder("p")
        b.mov(Reg(Register.ESI), Imm(0x0810_0000))
        b.mov(Reg(Register.ECX), Imm(3))
        b.mov(Mem(base=Register.ESI, index=Register.ECX, scale=4), Imm(9))
        b.halt()
        machine, trace = run_program(b)
        assert trace[2].dest_addr == 0x0810_000C

    def test_movs_copies_block(self):
        b = ProgramBuilder("p")
        b.mov(Reg(Register.ESI), Imm(0x0810_0000))
        b.mov(Mem(base=Register.ESI), Imm(0xAABBCCDD))
        b.mov(Reg(Register.EDI), Imm(0x0810_0100))
        b.movs(4)
        b.halt()
        machine, trace = run_program(b)
        assert machine.memory.read_uint(0x0810_0100, 4) == 0xAABBCCDD
        movs_record = trace[3]
        assert movs_record.event_type is EventType.MEM_TO_MEM
        assert movs_record.size == 4

    def test_byte_sized_access(self):
        b = ProgramBuilder("p")
        b.mov(Reg(Register.ESI), Imm(0x0810_0000))
        b.mov(Mem(base=Register.ESI, size=1), Imm(0x7F))
        b.mov(Reg(Register.EAX), Mem(base=Register.ESI, size=1))
        b.halt()
        machine, _ = run_program(b)
        assert machine.registers.read(Register.EAX) == 0x7F

    def test_xchg_is_other_event(self):
        b = ProgramBuilder("p")
        b.mov(Reg(Register.EAX), Imm(1))
        b.mov(Reg(Register.EBX), Imm(2))
        b.xchg(Reg(Register.EAX), Reg(Register.EBX))
        b.halt()
        machine, trace = run_program(b)
        assert machine.registers.read(Register.EAX) == 2
        assert trace[2].event_type is EventType.OTHER

    def test_lea_computes_address_without_access(self):
        b = ProgramBuilder("p")
        b.mov(Reg(Register.ESI), Imm(0x100))
        b.lea(Reg(Register.EAX), Mem(base=Register.ESI, disp=0x20))
        b.halt()
        machine, trace = run_program(b)
        assert machine.registers.read(Register.EAX) == 0x120
        assert not trace[1].is_load and not trace[1].is_store


class TestControlFlow:
    def test_conditional_loop(self):
        b = ProgramBuilder("p")
        b.mov(Reg(Register.ECX), Imm(5))
        b.mov(Reg(Register.EAX), Imm(0))
        b.label("loop")
        b.add(Reg(Register.EAX), Imm(2))
        b.sub(Reg(Register.ECX), Imm(1))
        b.cmp(Reg(Register.ECX), Imm(0))
        b.jcc(Cond.NE, "loop")
        b.halt()
        machine, trace = run_program(b)
        assert machine.registers.read(Register.EAX) == 10
        cond_tests = [r for r in trace if isinstance(r, InstructionRecord) and r.is_cond_test]
        assert len(cond_tests) == 5

    def test_call_and_ret(self):
        b = ProgramBuilder("p")
        b.call("fn")
        b.halt()
        b.label("fn")
        b.mov(Reg(Register.EAX), Imm(99))
        b.ret()
        machine, trace = run_program(b)
        assert machine.registers.read(Register.EAX) == 99
        assert any(r.is_indirect_jump for r in trace if isinstance(r, InstructionRecord))

    def test_push_pop(self):
        b = ProgramBuilder("p")
        b.mov(Reg(Register.EAX), Imm(42))
        b.push(Reg(Register.EAX))
        b.pop(Reg(Register.EBX))
        b.halt()
        machine, trace = run_program(b)
        assert machine.registers.read(Register.EBX) == 42
        assert trace[1].event_type is EventType.REG_TO_MEM
        assert trace[2].event_type is EventType.MEM_TO_REG

    def test_indirect_jump_through_register(self):
        b = ProgramBuilder("p")
        b.mov(Reg(Register.EAX), Imm(0x0804_8000 + 3 * 4))   # address of the halt
        b.jmp_indirect(Reg(Register.EAX))
        b.nop()
        b.halt()
        machine, trace = run_program(b)
        assert machine.halted
        jump = trace[1]
        assert jump.event_type is EventType.INDIRECT_JUMP and jump.is_indirect_jump

    def test_wild_indirect_jump_halts(self):
        b = ProgramBuilder("p")
        b.mov(Reg(Register.EAX), Imm(0x55555555))
        b.jmp_indirect(Reg(Register.EAX))
        b.halt()
        machine, _ = run_program(b)
        assert machine.halted

    def test_conditions(self):
        for cond, compare, expected in [
            (Cond.EQ, 0, True), (Cond.NE, 1, True), (Cond.LT, -1, True),
            (Cond.GE, 0, True), (Cond.GT, 1, True), (Cond.LE, 1, False),
        ]:
            b = ProgramBuilder("p")
            b.mov(Reg(Register.EAX), Imm(compare & 0xFFFFFFFF))
            b.cmp(Reg(Register.EAX), Imm(0))
            b.jcc(cond, "taken")
            b.mov(Reg(Register.EBX), Imm(1))
            b.halt()
            b.label("taken")
            b.mov(Reg(Register.EBX), Imm(2))
            b.halt()
            machine, _ = run_program(b)
            assert (machine.registers.read(Register.EBX) == 2) is expected, cond


class TestAnnotations:
    def test_malloc_free_annotations(self):
        b = ProgramBuilder("p")
        b.malloc(Imm(64))
        b.free(Reg(Register.EAX))
        b.halt()
        machine, trace = run_program(b)
        malloc, free = trace[0], trace[1]
        assert isinstance(malloc, AnnotationRecord) and malloc.event_type is EventType.MALLOC
        assert malloc.size == 64
        assert free.event_type is EventType.FREE and free.address == malloc.address

    def test_malloc_result_in_eax_is_heap_address(self):
        b = ProgramBuilder("p")
        b.malloc(Imm(16))
        b.halt()
        machine, _ = run_program(b)
        layout = machine.memory.layout
        assert layout.heap_base <= machine.registers.read(Register.EAX) < layout.mmap_base

    def test_double_free_does_not_crash_machine(self):
        b = ProgramBuilder("p")
        b.malloc(Imm(16))
        b.free(Reg(Register.EAX))
        b.free(Reg(Register.EAX))
        b.halt()
        machine, trace = run_program(b)
        assert machine.halted
        assert sum(1 for r in trace if isinstance(r, AnnotationRecord)
                   and r.event_type is EventType.FREE) == 2

    def test_syscall_read_fills_buffer(self):
        b = ProgramBuilder("p")
        b.malloc(Imm(32))
        b.syscall(SyscallKind.READ, Reg(Register.EAX), Imm(8))
        b.halt()
        machine, trace = run_program(b)
        buffer_address = trace[0].address
        assert machine.memory.read(buffer_address, 1) != b"\x00"
        assert trace[1].event_type is EventType.SYSCALL_READ

    def test_realloc_copies_contents(self):
        b = ProgramBuilder("p")
        b.malloc(Imm(16))
        b.mov(Reg(Register.EBP), Reg(Register.EAX))
        b.mov(Mem(base=Register.EBP), Imm(0x77))
        b.realloc(Reg(Register.EBP), Imm(64))
        b.halt()
        machine, _ = run_program(b)
        new_address = machine.registers.read(Register.EAX)
        assert machine.memory.read_uint(new_address, 4) == 0x77

    def test_heap_exhaustion_traps(self):
        b = ProgramBuilder("p")
        b.malloc(Imm(0x7000_0000))
        b.halt()
        machine = Machine(b.build())
        with pytest.raises(Trap):
            machine.trace()


class TestThreads:
    def test_lock_manager_mutual_exclusion(self):
        lm = LockManager()
        assert lm.try_acquire(0x10, 0)
        assert not lm.try_acquire(0x10, 1)
        lm.release(0x10, 0)
        assert lm.try_acquire(0x10, 1)

    def test_threads_interleave_and_tag_records(self):
        def thread_program(tid):
            b = ProgramBuilder(f"t{tid}")
            b.mov(Reg(Register.EAX), Imm(tid))
            for _ in range(10):
                b.add(Reg(Register.EAX), Imm(1))
            b.halt()
            return b.build()

        tm = ThreadedMachine([thread_program(0), thread_program(1)], quantum=3)
        trace = tm.trace()
        thread_ids = {r.thread_id for r in trace if isinstance(r, InstructionRecord)}
        assert thread_ids == {0, 1}
        assert any(isinstance(r, AnnotationRecord) and r.event_type is EventType.THREAD_CREATE
                   for r in trace)

    def test_lock_contention_blocks_until_release(self):
        def holder():
            b = ProgramBuilder("holder")
            b.lock(Imm(0x0813_0000))
            for _ in range(20):
                b.nop()
            b.unlock(Imm(0x0813_0000))
            b.halt()
            return b.build()

        def waiter():
            b = ProgramBuilder("waiter")
            b.lock(Imm(0x0813_0000))
            b.unlock(Imm(0x0813_0000))
            b.halt()
            return b.build()

        tm = ThreadedMachine([holder(), waiter()], quantum=5)
        trace = tm.trace()
        lock_events = [r for r in trace if isinstance(r, AnnotationRecord)
                       and r.event_type is EventType.LOCK]
        assert len(lock_events) == 2
        assert lock_events[0].thread_id == 0

    def test_deadlock_detected(self):
        def never_unlocks():
            b = ProgramBuilder("d0")
            b.lock(Imm(0x10))
            b.label("spin")
            b.lock(Imm(0x20))
            b.halt()
            return b.build()

        def other():
            b = ProgramBuilder("d1")
            b.lock(Imm(0x20))
            b.lock(Imm(0x10))
            b.halt()
            return b.build()

        tm = ThreadedMachine([never_unlocks(), other()], quantum=2)
        with pytest.raises(DeadlockError):
            tm.trace()
