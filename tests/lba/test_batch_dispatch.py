"""Batched-vs-per-record dispatch equivalence.

The acceptance bar of the hot-path overhaul: ``consume_batch`` must produce
*bit-identical* simulated-cycle accounting to a per-record ``consume`` loop
-- same :class:`DispatchStats`, same :class:`AcceleratorStats`, same total
lifeguard cycles and same error reports -- for every lifeguard, with and
without a modelled cache hierarchy.
"""

import pytest

from repro.cache.hierarchy import MemoryHierarchy
from repro.core.accelerator import AcceleratorConfig, EventAccelerator
from repro.core.config import SystemConfig
from repro.isa.machine import Machine
from repro.lba.capture import LogProducer
from repro.lba.dispatch import EventDispatcher
from repro.lifeguards import ALL_LIFEGUARDS
from repro.trace.replay import build_pipeline
from repro.workloads.base import get_workload
from repro.workloads.bugs import double_free, uninitialized_condition, use_after_free


def _workload_records(name, scale=0.3):
    workload = get_workload(name, scale=scale)
    producer = LogProducer(workload.build_machine(), None)
    return [record for record, _cost in producer.stream()]


@pytest.fixture(scope="module")
def spec_records():
    """A single-threaded SPEC-analogue record stream (loads/stores/annotations)."""
    return _workload_records("mcf")


@pytest.fixture(scope="module")
def multithreaded_records():
    """A multithreaded stream with lock/unlock and thread events."""
    return _workload_records("pbzip2")


@pytest.fixture(scope="module")
def buggy_records():
    """Record streams that actually trigger lifeguard reports."""
    records = []
    for program in (use_after_free(), double_free(), uninitialized_condition()):
        records.extend(Machine(program).trace())
    return records


def _run_per_record(records, lifeguard_name):
    lifeguard = ALL_LIFEGUARDS[lifeguard_name]()
    accelerator, dispatcher = build_pipeline(lifeguard)
    cycles = sum(dispatcher.consume(record) for record in records)
    lifeguard.finalize()
    return lifeguard, accelerator, dispatcher, cycles


def _run_batched(records, lifeguard_name):
    lifeguard = ALL_LIFEGUARDS[lifeguard_name]()
    accelerator, dispatcher = build_pipeline(lifeguard)
    cycles = dispatcher.consume_batch(records)
    lifeguard.finalize()
    return lifeguard, accelerator, dispatcher, cycles


def _assert_identical(per, batched):
    lifeguard_p, accelerator_p, dispatcher_p, cycles_p = per
    lifeguard_b, accelerator_b, dispatcher_b, cycles_b = batched
    assert dispatcher_p.stats == dispatcher_b.stats
    assert accelerator_p.stats == accelerator_b.stats
    assert cycles_p == cycles_b
    assert cycles_p == dispatcher_p.stats.lifeguard_cycles
    assert lifeguard_p.reports == lifeguard_b.reports


@pytest.mark.parametrize("name", sorted(ALL_LIFEGUARDS))
def test_batched_matches_per_record_on_spec_stream(spec_records, name):
    _assert_identical(
        _run_per_record(spec_records, name), _run_batched(spec_records, name)
    )


def test_batched_matches_per_record_multithreaded_lockset(multithreaded_records):
    _assert_identical(
        _run_per_record(multithreaded_records, "LockSet"),
        _run_batched(multithreaded_records, "LockSet"),
    )


@pytest.mark.parametrize("name", ["AddrCheck", "MemCheck"])
def test_batched_matches_per_record_with_reports(buggy_records, name):
    per = _run_per_record(buggy_records, name)
    batched = _run_batched(buggy_records, name)
    _assert_identical(per, batched)
    assert per[0].reports, "bug workloads should produce reports"


def _pipeline_with_hierarchy(lifeguard):
    config = SystemConfig().gated_for(lifeguard)
    accelerator = EventAccelerator(lifeguard.etct, AcceleratorConfig.from_system(config))
    lifeguard.attach_hardware(accelerator.mtlb)
    dispatcher = EventDispatcher(lifeguard, accelerator, MemoryHierarchy(num_cores=2))
    return accelerator, dispatcher


@pytest.mark.parametrize("name", ["MemCheck", "TaintCheck"])
def test_batched_matches_per_record_with_cache_hierarchy(buggy_records, name):
    """Cache-latency charging must also be identical between the two paths."""
    lifeguard_p = ALL_LIFEGUARDS[name]()
    accelerator_p, dispatcher_p = _pipeline_with_hierarchy(lifeguard_p)
    cycles_p = sum(dispatcher_p.consume(record) for record in buggy_records)
    lifeguard_p.finalize()

    lifeguard_b = ALL_LIFEGUARDS[name]()
    accelerator_b, dispatcher_b = _pipeline_with_hierarchy(lifeguard_b)
    cycles_b = dispatcher_b.consume_batch(buggy_records)
    lifeguard_b.finalize()

    assert dispatcher_p.stats == dispatcher_b.stats
    assert accelerator_p.stats == accelerator_b.stats
    assert cycles_p == cycles_b
    assert lifeguard_p.reports == lifeguard_b.reports


def test_consume_batch_accepts_generators(spec_records):
    """Batch input may be any iterable, not just a list."""
    lifeguard_list = ALL_LIFEGUARDS["TaintCheck"]()
    _, dispatcher_list = build_pipeline(lifeguard_list)
    dispatcher_list.consume_batch(spec_records)

    lifeguard_gen = ALL_LIFEGUARDS["TaintCheck"]()
    _, dispatcher_gen = build_pipeline(lifeguard_gen)
    dispatcher_gen.consume_batch(record for record in spec_records)

    assert dispatcher_list.stats == dispatcher_gen.stats
