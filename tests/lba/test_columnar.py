"""Run-boundary edge cases of the columnar dispatch engine.

The conformance matrix proves the engine bit-identical over whole
workload streams; these tests aim crafted record sequences at the
run-grouping machinery itself -- runs of length one, runs spanning trace
chunk boundaries, mixed-ordinal chunks, annotation rows splitting runs,
and the scalar fallback paths.
"""

import os

import pytest

from repro.cache.hierarchy import MemoryHierarchy
from repro.core.events import AnnotationRecord, EventType, InstructionRecord
from repro.lba.columnar import ColumnarEngine
from repro.lba.dispatch import EventDispatcher
from repro.lifeguards import ALL_LIFEGUARDS
from repro.trace.codec import RecordColumns
from repro.trace.replay import build_pipeline
from repro.trace.tracefile import TraceReader, TraceWriter

HEAP = 0x0900_0000

LIFEGUARDS = sorted(ALL_LIFEGUARDS)


def _load(i, reg=None):
    return InstructionRecord(
        pc=0x0804_8000 + 4 * i, event_type=EventType.MEM_TO_REG,
        dest_reg=(reg if reg is not None else i % 8),
        src_addr=HEAP + (i % 64) * 4, size=4, is_load=True, base_reg=(i + 1) % 8,
    )


def _store(i):
    return InstructionRecord(
        pc=0x0804_9000 + 4 * i, event_type=EventType.REG_TO_MEM,
        src_reg=i % 8, dest_addr=HEAP + (i % 64) * 4, size=4, is_store=True,
        base_reg=(i + 2) % 8,
    )


def _unary(i):
    return InstructionRecord(
        pc=0x0804_A000 + 4 * i, event_type=EventType.REG_SELF, dest_reg=i % 8,
    )


def _cond(i):
    return InstructionRecord(
        pc=0x0804_B000 + 4 * i, event_type=EventType.COND_TEST,
        src_reg=i % 8, is_cond_test=True,
    )


def _malloc(i):
    return AnnotationRecord(
        event_type=EventType.MALLOC, address=HEAP + 4096 * i, size=256,
        pc=0x0804_7F00,
    )


def _other(i):
    return InstructionRecord(
        pc=0x0804_C000 + 4 * i, event_type=EventType.OTHER,
        dest_reg=i % 8, src_reg=(i + 3) % 8,
    )


def _reference(records, lifeguard_name):
    lifeguard = ALL_LIFEGUARDS[lifeguard_name]()
    accelerator, dispatcher = build_pipeline(lifeguard)
    cycles = sum(dispatcher.consume(record) for record in records)
    lifeguard.finalize()
    return lifeguard, accelerator, dispatcher, cycles


def _columnar(records, lifeguard_name):
    lifeguard = ALL_LIFEGUARDS[lifeguard_name]()
    accelerator, dispatcher = build_pipeline(lifeguard)
    cycles = ColumnarEngine(dispatcher).consume_columns(
        RecordColumns.from_records(records)
    )
    lifeguard.finalize()
    return lifeguard, accelerator, dispatcher, cycles


def _assert_identical(records, lifeguard_name):
    ref = _reference(records, lifeguard_name)
    col = _columnar(records, lifeguard_name)
    assert ref[2].stats == col[2].stats
    assert ref[1].stats == col[1].stats
    assert ref[3] == col[3]
    assert ref[0].reports == col[0].reports


@pytest.mark.parametrize("lifeguard", LIFEGUARDS)
def test_runs_of_length_one(lifeguard):
    """Strictly alternating ordinals: every run is a single record."""
    records = []
    for i in range(40):
        records.append(_load(i))
        records.append(_unary(i))
        records.append(_store(i))
        records.append(_cond(i))
    _assert_identical(records, lifeguard)


@pytest.mark.parametrize("lifeguard", LIFEGUARDS)
def test_mixed_ordinal_chunks(lifeguard):
    """Short runs of every shape mixed with annotations and ``other``."""
    records = [_malloc(0)]
    for i in range(30):
        records.append(_load(i))
        if i % 3 == 0:
            records.append(_store(i))
            records.append(_store(i + 1))
        if i % 5 == 0:
            records.append(_other(i))
        if i % 7 == 0:
            records.append(_malloc(i + 1))
        records.append(_cond(i))
    _assert_identical(records, lifeguard)


@pytest.mark.parametrize("lifeguard", LIFEGUARDS)
def test_annotation_splits_a_run(lifeguard):
    """An annotation row mid-run forces a boundary and a scalar fallback."""
    records = [_malloc(0)] + [_load(i) for i in range(10)]
    records += [_malloc(1)]
    records += [_load(i) for i in range(10, 20)]
    _assert_identical(records, lifeguard)


@pytest.mark.parametrize("lifeguard", ["MemCheck", "TaintCheck", "AddrCheck"])
def test_chunk_spanning_runs_via_trace_replay(tmp_path, lifeguard):
    """One long homogeneous run split across trace chunks replays identically.

    Chunk boundaries reset the codec but must not perturb dispatch: the
    engine sees the run as two column sets whose concatenated consumption
    equals the scalar loop over the whole stream.
    """
    records = [_malloc(0)] + [_load(i) for i in range(600)] + [
        _store(i) for i in range(600)
    ]
    path = os.fspath(tmp_path / "span.lbatrace")
    with TraceWriter(path, chunk_bytes=512) as writer:
        writer.extend(records)
    assert writer.stats.chunks > 2, "trace must span several chunks"

    ref = _reference(records, lifeguard)

    lifeguard_obj = ALL_LIFEGUARDS[lifeguard]()
    accelerator, dispatcher = build_pipeline(lifeguard_obj)
    engine = ColumnarEngine(dispatcher)
    cycles = 0
    with TraceReader(path) as reader:
        for index in range(reader.num_chunks):
            cycles += engine.consume_columns(reader.read_chunk_columns(index))
    lifeguard_obj.finalize()

    assert dispatcher.stats == ref[2].stats
    assert accelerator.stats == ref[1].stats
    assert cycles == ref[3]
    assert lifeguard_obj.reports == ref[0].reports


def test_engine_degrades_to_batched_path_with_hierarchy():
    """With a cache hierarchy the engine must fall back (and stay identical)."""
    records = [_malloc(0)] + [_load(i) for i in range(50)] + [_store(i) for i in range(20)]

    def run(columnar):
        lifeguard = ALL_LIFEGUARDS["MemCheck"]()
        accelerator, _ = build_pipeline(lifeguard)
        hierarchy = MemoryHierarchy(num_cores=2)
        dispatcher = EventDispatcher(lifeguard, accelerator, hierarchy)
        if columnar:
            engine = ColumnarEngine(dispatcher)
            assert not engine.supported
            cycles = engine.consume_columns(RecordColumns.from_records(records))
        else:
            cycles = sum(dispatcher.consume(record) for record in records)
        return dispatcher.stats, cycles

    scalar_stats, scalar_cycles = run(columnar=False)
    columnar_stats, columnar_cycles = run(columnar=True)
    assert scalar_stats == columnar_stats
    assert scalar_cycles == columnar_cycles


def test_hand_built_columns_get_runs_lazily():
    """Columns without a run table are grouped on first consumption."""
    records = [_load(i) for i in range(8)]
    columns = RecordColumns.from_records(records)
    columns.runs = []
    lifeguard = ALL_LIFEGUARDS["AddrCheck"]()
    _, dispatcher = build_pipeline(lifeguard)
    ColumnarEngine(dispatcher).consume_columns(columns)
    assert columns.runs
    assert dispatcher.stats.records_consumed == len(records)
