"""Columnar opt-outs stay bit-identical through the generic fallback.

``LockSet`` and ``TaintCheckDetailed`` deliberately register **no** span
fast handlers (:meth:`Lifeguard.columnar_handlers` returns ``{}``): LockSet
because its per-word state machine plus the annotation-driven filter
flushes do not vectorise, TaintCheckDetailed because its overridden scalar
handlers add provenance recording that inherited fast paths would silently
skip.  The columnar engine must then fall back to generic per-event
delivery -- and that fallback must remain *bit-identical* to the scalar
``consume`` loop: same reports, same DispatchStats/AcceleratorStats, same
cycles, same mapper counters, and the same internal accelerator state
(Idempotent-Filter sets with LRU order for LockSet, IT table and M-TLB CAM
for TaintCheckDetailed).

Fuzzed programs -- multithreaded, tainted, lock-heavy and bug-injected
seeds -- provide the record streams, so the fallback is exercised across
annotation splits, cross-thread interleavings and error-reporting paths
rather than just the fixed workloads.
"""

import pytest

from repro.lba.columnar import ColumnarEngine
from repro.lifeguards import ALL_LIFEGUARDS
from repro.trace.codec import RecordColumns
from repro.trace.replay import build_pipeline
from repro.isa.threads import ThreadedMachine
from repro.workloads.generator import build_fuzz_programs, generate_spec

OPT_OUT_LIFEGUARDS = ("LockSet", "TaintCheckDetailed")

#: A structurally diverse seed slice: clean single/multi-threaded, tainted,
#: and every injected bug class (see ``profile_for_seed``).
FUZZ_SEEDS = (0, 1, 2, 3, 5, 6, 7, 13, 14)


@pytest.fixture(scope="module")
def fuzz_streams():
    streams = {}

    def build(seed):
        if seed not in streams:
            streams[seed] = ThreadedMachine(
                build_fuzz_programs(generate_spec(seed))
            ).trace()
        return streams[seed]

    return build


@pytest.mark.parametrize("name", OPT_OUT_LIFEGUARDS)
def test_opt_out_registers_no_fast_handlers(name):
    assert ALL_LIFEGUARDS[name]().columnar_handlers() == {}


@pytest.mark.parametrize("name", OPT_OUT_LIFEGUARDS)
@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_fallback_matches_scalar_on_fuzzed_programs(fuzz_streams, name, seed):
    records = fuzz_streams(seed)
    assert records

    scalar_lifeguard = ALL_LIFEGUARDS[name]()
    scalar_accel, scalar_dispatch = build_pipeline(scalar_lifeguard)
    scalar_cycles = sum(scalar_dispatch.consume(record) for record in records)
    scalar_lifeguard.finalize()

    columnar_lifeguard = ALL_LIFEGUARDS[name]()
    columnar_accel, columnar_dispatch = build_pipeline(columnar_lifeguard)
    engine = ColumnarEngine(columnar_dispatch)
    columnar_cycles = engine.consume_columns(RecordColumns.from_records(records))
    columnar_lifeguard.finalize()

    assert columnar_lifeguard.reports == scalar_lifeguard.reports
    assert columnar_dispatch.stats == scalar_dispatch.stats
    assert columnar_accel.stats == scalar_accel.stats
    assert columnar_cycles == scalar_cycles
    assert columnar_lifeguard.mapper_stats() == scalar_lifeguard.mapper_stats()
    assert columnar_accel.state_signature() == scalar_accel.state_signature()


@pytest.mark.parametrize("seed", (5, 13))
def test_lockset_detects_fuzzed_race_through_fallback(fuzz_streams, seed):
    """The race seeds' DATA_RACE report survives the columnar fallback."""
    from repro.lifeguards.reports import ErrorKind

    records = fuzz_streams(seed)
    lifeguard = ALL_LIFEGUARDS["LockSet"]()
    _, dispatcher = build_pipeline(lifeguard)
    ColumnarEngine(dispatcher).consume_columns(RecordColumns.from_records(records))
    lifeguard.finalize()
    assert any(report.kind is ErrorKind.DATA_RACE for report in lifeguard.reports)
