"""Differential conformance matrix: every lifeguard × every workload.

Five consumption paths must agree bit for bit on every cell of the
matrix:

* the per-record dispatch loop (``EventDispatcher.consume``),
* the batched dispatch loop (``EventDispatcher.consume_batch``),
* the run-grouped columnar engine (``ColumnarEngine.consume_columns``
  over a structure-of-arrays flattening of the record stream), pinned
  to its scalar paths via ``kernels=False``,
* the same columnar engine with the vectorized NumPy kernel tier
  enabled (on hosts without numpy the tier is absent and this leg
  degenerates to a second scalar run, still fully checked),
* the multi-core platform at N=1 against the classic dual-core
  :meth:`LBASystem.run` (which drives the per-record loop through the
  full timing model).

"Agree" means identical error reports, identical lifeguard cycle counts
and identical statistics -- :class:`DispatchStats`,
:class:`AcceleratorStats`, and for the columnar leg additionally the
*internal* accelerator state (IT table, Idempotent-Filter contents and
LRU order, M-TLB CAM and counters, mapper counters); for the full-system
leg the complete :class:`MonitoringResult` including the timing
breakdown, producer statistics (exact log bytes) and mapper counters.

The matrix spans all five lifeguards and *every* registered workload
(the full SPEC-analogue suite plus the multithreaded Table 3 suite), so
any new fast path that diverges from its reference path, on any workload
family, fails here rather than in an experiment eyeball.

Adding a lifeguard: register it in ``repro.lifeguards.ALL_LIFEGUARDS``
and it joins the matrix automatically -- the parametrization below reads
the registry.
"""

import pytest

from repro.core.config import SystemConfig
from repro.lba.capture import LogProducer
from repro.lba.columnar import ColumnarEngine
from repro.lba.multicore import MultiCoreLBASystem
from repro.lba.platform import LBASystem
from repro.lifeguards import ALL_LIFEGUARDS
from repro.trace.codec import RecordColumns
from repro.trace.replay import build_pipeline
from repro.workloads.base import get_workload, workload_names

#: Small but non-trivial inputs: every workload still exercises its loops,
#: allocations and annotations, and the whole matrix stays CI-friendly.
SCALE = 0.15

LIFEGUARDS = sorted(ALL_LIFEGUARDS)
WORKLOADS = workload_names() + workload_names(multithreaded=True)


@pytest.fixture(scope="module")
def record_streams():
    """Lazily-built cache of each workload's full record stream."""
    streams = {}

    def build(name):
        if name not in streams:
            producer = LogProducer(get_workload(name, scale=SCALE).build_machine(), None)
            streams[name] = [record for record, _cost in producer.stream()]
        return streams[name]

    return build


def _run_per_record(records, lifeguard_name):
    lifeguard = ALL_LIFEGUARDS[lifeguard_name]()
    accelerator, dispatcher = build_pipeline(lifeguard)
    cycles = sum(dispatcher.consume(record) for record in records)
    lifeguard.finalize()
    return lifeguard, accelerator, dispatcher, cycles


def _run_batched(records, lifeguard_name):
    lifeguard = ALL_LIFEGUARDS[lifeguard_name]()
    accelerator, dispatcher = build_pipeline(lifeguard)
    cycles = dispatcher.consume_batch(records)
    lifeguard.finalize()
    return lifeguard, accelerator, dispatcher, cycles


def _run_columnar(records, lifeguard_name):
    lifeguard = ALL_LIFEGUARDS[lifeguard_name]()
    accelerator, dispatcher = build_pipeline(lifeguard)
    engine = ColumnarEngine(dispatcher, kernels=False)
    cycles = engine.consume_columns(RecordColumns.from_records(records))
    lifeguard.finalize()
    return lifeguard, accelerator, dispatcher, cycles


def _run_numpy(records, lifeguard_name):
    lifeguard = ALL_LIFEGUARDS[lifeguard_name]()
    accelerator, dispatcher = build_pipeline(lifeguard)
    engine = ColumnarEngine(dispatcher)
    cycles = engine.consume_columns(RecordColumns.from_records(records))
    lifeguard.finalize()
    return lifeguard, accelerator, dispatcher, cycles


def _assert_accelerator_state_equal(ref, col):
    """Internal accelerator-stack state must match, not just the counters.

    ``state_signature()`` snapshots the IT table, the Idempotent-Filter
    sets *including LRU order* and the M-TLB CAM *including LRU order*
    (with ``None`` for disabled components, which also pins down that both
    pipelines enabled the same techniques).
    """
    assert ref.state_signature() == col.state_signature()
    if ref.it is not None:
        assert ref.it.stats == col.it.stats
    if ref.idempotent_filter is not None:
        assert ref.idempotent_filter.stats == col.idempotent_filter.stats
    if ref.mtlb is not None:
        assert ref.mtlb.stats == col.mtlb.stats


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("lifeguard", LIFEGUARDS)
def test_batched_dispatch_matches_per_record(record_streams, lifeguard, workload):
    """``consume_batch`` is bit-identical to a ``consume`` loop on every cell."""
    records = record_streams(workload)
    assert records, f"workload {workload} produced no records"
    per = _run_per_record(records, lifeguard)
    batched = _run_batched(records, lifeguard)
    # .diff() names exactly which counters diverged on failure.
    assert per[2].stats.diff(batched[2].stats) == {}  # DispatchStats
    assert per[1].stats == batched[1].stats          # AcceleratorStats
    assert per[3] == batched[3]                      # total lifeguard cycles
    assert per[3] == per[2].stats.lifeguard_cycles
    assert per[0].reports == batched[0].reports      # error reports


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("lifeguard", LIFEGUARDS)
def test_columnar_dispatch_matches_per_record(record_streams, lifeguard, workload):
    """The columnar engine is bit-identical to a ``consume`` loop on every cell.

    Beyond the externally observable outcome (stats, cycles, reports) this
    also compares the internal accelerator state -- IT table contents, the
    Idempotent Filter's sets *including LRU order*, the M-TLB CAM and the
    mapper counters -- so a fast path that reaches the same totals through
    different hardware-state evolution still fails.
    """
    records = record_streams(workload)
    assert records, f"workload {workload} produced no records"
    per = _run_per_record(records, lifeguard)
    columnar = _run_columnar(records, lifeguard)
    assert per[2].stats.diff(columnar[2].stats) == {}  # DispatchStats
    assert per[1].stats == columnar[1].stats         # AcceleratorStats
    assert per[3] == columnar[3]                     # total lifeguard cycles
    assert columnar[3] == columnar[2].stats.lifeguard_cycles
    assert per[0].reports == columnar[0].reports     # error reports
    assert per[0].mapper_stats() == columnar[0].mapper_stats()
    _assert_accelerator_state_equal(per[1], columnar[1])


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("lifeguard", LIFEGUARDS)
def test_numpy_kernels_match_per_record(record_streams, lifeguard, workload):
    """The kernel-enabled columnar engine is bit-identical on every cell.

    Same comparison depth as the scalar columnar leg -- stats, cycles,
    reports, mapper counters and internal accelerator state.  Without
    numpy the tier is absent and this re-checks the scalar paths, so the
    test is meaningful (and must pass) on numpy-less hosts too.
    """
    records = record_streams(workload)
    assert records, f"workload {workload} produced no records"
    per = _run_per_record(records, lifeguard)
    vectored = _run_numpy(records, lifeguard)
    assert per[2].stats.diff(vectored[2].stats) == {}  # DispatchStats
    assert per[1].stats == vectored[1].stats         # AcceleratorStats
    assert per[3] == vectored[3]                     # total lifeguard cycles
    assert vectored[3] == vectored[2].stats.lifeguard_cycles
    assert per[0].reports == vectored[0].reports     # error reports
    assert per[0].mapper_stats() == vectored[0].mapper_stats()
    _assert_accelerator_state_equal(per[1], vectored[1])


@pytest.mark.parametrize("workload", ["mcf", "pbzip2"])
@pytest.mark.parametrize("lifeguard", LIFEGUARDS)
def test_consume_each_matches_per_record(record_streams, lifeguard, workload):
    """``consume_each`` returns exactly the per-record cycle sequence."""
    records = record_streams(workload)
    per_lifeguard = ALL_LIFEGUARDS[lifeguard]()
    _, per_dispatcher = build_pipeline(per_lifeguard)
    expected = [per_dispatcher.consume(record) for record in records]
    each_lifeguard = ALL_LIFEGUARDS[lifeguard]()
    _, each_dispatcher = build_pipeline(each_lifeguard)
    assert each_dispatcher.consume_each(records) == expected
    assert each_dispatcher.stats.diff(per_dispatcher.stats) == {}


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("lifeguard", LIFEGUARDS)
def test_multicore_single_core_matches_dual_core(lifeguard, workload):
    """The N=1 multi-core platform reproduces ``LBASystem.run`` bit for bit."""
    lifeguard_cls = ALL_LIFEGUARDS[lifeguard]
    reference = LBASystem(
        get_workload(workload, scale=SCALE).build_machine(),
        lifeguard_cls(),
        SystemConfig(),
        workload_name=workload,
    ).run()
    multicore = MultiCoreLBASystem(
        get_workload(workload, scale=SCALE).build_machine(),
        lifeguard_cls,
        SystemConfig(),
        num_cores=1,
        workload_name=workload,
    ).run()
    # MonitoringResult is a dataclass: this compares the timing breakdown
    # (all cycle counts), dispatch/accelerator/producer/mapper statistics,
    # the slowdown and the full report list in order.
    assert multicore.merged == reference
    assert multicore.stats.forwarded_records == 0
    assert multicore.stats.records == reference.producer.records
