"""Vectorized NumPy kernel tier: admission, bit-identity, optionality.

The kernel tier (:mod:`repro.lba.kernels`) may only ever change *how fast*
a columnar batch dispatches, never any observable outcome.  These tests
pin the tier's edges:

* long same-ordinal runs hit the kernels and stay bit-identical to the
  scalar engine (reports, DispatchStats, AcceleratorStats, cycles, mapper
  counters and the internal accelerator ``state_signature()``),
* length-1 runs, mixed-ordinal chunks and chunk-split runs behave,
* a hierarchy-attached engine falls back to batched dispatch untouched,
* zero-copy ``memoryview``-backed columns (the shared-memory replay
  representation) feed the kernels without materialisation,
* addresses beyond int64 decline admission instead of silently wrapping,
* without numpy the tier is absent and everything still runs (scalar).

Tests that assert kernels actually *fired* are skipped without numpy;
bit-identity tests run everywhere.
"""

import pytest

from repro.cache.hierarchy import MemoryHierarchy
from repro.core.events import AnnotationRecord, EventType, InstructionRecord
from repro.lba.columnar import ColumnarEngine
from repro.lba.dispatch import EventDispatcher
from repro.lba.kernels import HAVE_NUMPY, KERNEL_MIN_RUN, build_tier
from repro.lifeguards import ALL_LIFEGUARDS
from repro.obs import MetricsRegistry
from repro.obs.pipeline import collect_pipeline
from repro.trace.codec import RecordColumns
from repro.trace.replay import build_pipeline

requires_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")

LIFEGUARDS = sorted(ALL_LIFEGUARDS)

#: Heap segment base of the default :class:`SegmentLayout`.
HEAP = 0x0900_0000

#: Level-1 page size of the two-level shadow maps (level1_bits=16).
L1_PAGE = 1 << 16


def _malloc(base, size):
    return AnnotationRecord(event_type=EventType.MALLOC, address=base, size=size, pc=0x10)


def _store_imm(addr, pc=0x200):
    return InstructionRecord(pc=pc, event_type=EventType.IMM_TO_MEM,
                             dest_addr=addr, size=4, is_store=True)


def _load_reg(addr, reg, pc=0x300):
    return InstructionRecord(pc=pc, event_type=EventType.MEM_TO_REG,
                             dest_reg=reg, src_addr=addr, size=4, is_load=True)


def _cond_test(reg, pc=0x400):
    return InstructionRecord(pc=pc, event_type=EventType.COND_TEST,
                             src_reg=reg, is_cond_test=True)


def _mem_load(addr, pc=0x500):
    return InstructionRecord(pc=pc, event_type=EventType.MEM_LOAD,
                             src_addr=addr, size=4, is_load=True)


def stream(n_blocks=3, run=48):
    """Mixed-ordinal stream of long runs over disjoint heap blocks."""
    records = []
    for block in range(n_blocks):
        base = HEAP + block * 0x40000
        records.append(_malloc(base, run * 8))
        records.extend(_store_imm(base + 4 * i, pc=0x200 + block) for i in range(run))
        records.extend(_load_reg(base + 4 * i, i % 4, pc=0x300 + block) for i in range(run))
        records.extend(_cond_test(5, pc=0x400 + block) for _ in range(run))
        records.extend(_mem_load(base + 4 * i, pc=0x500 + block) for i in range(run))
    return records


def _run_engine(chunks, lifeguard_name, kernels):
    """Dispatch pre-built column chunks; returns (engine outcome) tuple."""
    lifeguard = ALL_LIFEGUARDS[lifeguard_name]()
    accelerator, dispatcher = build_pipeline(lifeguard)
    if kernels:
        engine = ColumnarEngine(dispatcher)
    else:
        engine = ColumnarEngine(dispatcher, kernels=False)
    cycles = sum(engine.consume_columns(chunk) for chunk in chunks)
    lifeguard.finalize()
    return lifeguard, accelerator, dispatcher, cycles, engine


def _chunked(records, chunk_rows=None):
    if chunk_rows is None:
        return [RecordColumns.from_records(records)]
    return [RecordColumns.from_records(records[i:i + chunk_rows])
            for i in range(0, len(records), chunk_rows)]


def _assert_identical(scalar, vectored):
    s_lg, s_acc, s_disp, s_cycles, _ = scalar
    v_lg, v_acc, v_disp, v_cycles, _ = vectored
    assert v_disp.stats.diff(s_disp.stats) == {}
    assert v_acc.stats == s_acc.stats
    assert v_cycles == s_cycles
    assert v_lg.reports == s_lg.reports
    assert v_lg.mapper_stats() == s_lg.mapper_stats()
    assert v_acc.state_signature() == s_acc.state_signature()


# ------------------------------------------------------------------ bit-identity


@requires_numpy
@pytest.mark.parametrize("lifeguard", LIFEGUARDS)
def test_long_runs_bit_identical_and_kernels_fire(lifeguard):
    records = stream()
    scalar = _run_engine(_chunked(records), lifeguard, kernels=False)
    vectored = _run_engine(_chunked(records), lifeguard, kernels=True)
    _assert_identical(scalar, vectored)
    engine = vectored[4]
    if lifeguard != "LockSet":
        # Every lifeguard with registered kernels must vectorize at least
        # some of these runs (declines are counted, never silent).
        assert engine.kernel_runs > 0
    assert scalar[4].kernel_runs == 0
    assert scalar[4].kernel_fallbacks == 0


@pytest.mark.parametrize("lifeguard", LIFEGUARDS)
def test_length_one_runs_bypass_kernels(lifeguard):
    """Alternating ordinals produce length-1 runs: below KERNEL_MIN_RUN the
    wrapper goes straight to the scalar step and bumps no counter."""
    records = [_malloc(HEAP, 0x1000)]
    for i in range(40):
        records.append(_mem_load(HEAP + 4 * (i % 8)))
        records.append(_cond_test(3))
    scalar = _run_engine(_chunked(records), lifeguard, kernels=False)
    vectored = _run_engine(_chunked(records), lifeguard, kernels=True)
    _assert_identical(scalar, vectored)
    assert vectored[4].kernel_runs == 0
    assert vectored[4].kernel_fallbacks == 0


@requires_numpy
@pytest.mark.parametrize("lifeguard", LIFEGUARDS)
def test_chunk_split_and_page_spanning_runs(lifeguard):
    """Runs cut across column chunks and across shadow level-1 pages."""
    # A block straddling a level-1 page boundary: the gather must walk
    # two shadow chunks.
    base = HEAP + L1_PAGE - 24 * 4
    run = 48
    records = [_malloc(base, run * 4)]
    records.extend(_store_imm(base + 4 * i) for i in range(run))
    records.extend(_load_reg(base + 4 * i, i % 4) for i in range(run))
    records.extend(_mem_load(base + 4 * i) for i in range(run))
    # Chunk size 40 cuts every run; both halves still exceed KERNEL_MIN_RUN
    # or fall back -- either way outcomes must match the scalar engine.
    for chunk_rows in (None, 40):
        scalar = _run_engine(_chunked(records, chunk_rows), lifeguard, kernels=False)
        vectored = _run_engine(_chunked(records, chunk_rows), lifeguard, kernels=True)
        _assert_identical(scalar, vectored)


@pytest.mark.parametrize("lifeguard", LIFEGUARDS)
def test_mixed_ordinal_chunks_bit_identical(lifeguard):
    """Kernel-eligible runs interleaved with short scalar runs in one chunk."""
    records = [_malloc(HEAP, 0x2000)]
    records.extend(_mem_load(HEAP + 4 * i) for i in range(32))
    records.append(_cond_test(2))
    records.extend(_store_imm(HEAP + 4 * i) for i in range(32))
    records.append(_load_reg(HEAP, 1))
    records.extend(_cond_test(5) for _ in range(32))
    scalar = _run_engine(_chunked(records), lifeguard, kernels=False)
    vectored = _run_engine(_chunked(records), lifeguard, kernels=True)
    _assert_identical(scalar, vectored)


# ------------------------------------------------------------------ fallbacks


def test_hierarchy_attached_engine_falls_back_to_batched():
    """With a cache hierarchy the engine defers to ``consume_batch`` --
    the kernel tier never sees the batch and its counters stay zero."""
    records = stream(n_blocks=1)

    def run(columnar):
        lifeguard = ALL_LIFEGUARDS["MemCheck"]()
        accelerator, _ = build_pipeline(lifeguard)
        dispatcher = EventDispatcher(lifeguard, accelerator, MemoryHierarchy(num_cores=2))
        if columnar:
            engine = ColumnarEngine(dispatcher)
            assert not engine.supported
            cycles = engine.consume_columns(RecordColumns.from_records(records))
            assert engine.kernel_runs == 0
            assert engine.kernel_fallbacks == 0
        else:
            cycles = sum(dispatcher.consume(record) for record in records)
        return dispatcher.stats, cycles

    scalar_stats, scalar_cycles = run(columnar=False)
    columnar_stats, columnar_cycles = run(columnar=True)
    assert columnar_stats.diff(scalar_stats) == {}
    assert columnar_cycles == scalar_cycles


@pytest.mark.parametrize("lifeguard", ["MemCheck", "TaintCheck", "AddrCheck"])
def test_huge_addresses_decline_without_wraparound(lifeguard):
    """Addresses beyond int64 must fall back to the exact scalar paths.

    ``2**64 + offset`` would alias back into the heap if anything
    truncated it to 64 bits -- the scalar engine treats it as a plain
    (huge) non-heap address, so any silent wraparound shows up as report
    or state divergence here.
    """
    run = 32
    records = [_malloc(HEAP, 0x1000)]
    records.extend(_store_imm((1 << 64) + HEAP + 4 * i) for i in range(run))
    records.extend(_load_reg((1 << 64) + HEAP + 4 * i, i % 4) for i in range(run))
    records.extend(_mem_load((1 << 63) + 4 * i) for i in range(run))
    scalar = _run_engine(_chunked(records), lifeguard, kernels=False)
    vectored = _run_engine(_chunked(records), lifeguard, kernels=True)
    _assert_identical(scalar, vectored)
    if HAVE_NUMPY:
        # The typed column is unrepresentable, so every address-consuming
        # kernel must have *declined* (counted fallback), never crashed or
        # wrapped.  TaintCheck's IT-absorb kernel is exempt: it copies the
        # addresses verbatim through ``int()`` and may commit.
        assert vectored[4].kernel_fallbacks > 0
        if lifeguard != "TaintCheck":
            assert vectored[4].kernel_runs == 0


@requires_numpy
@pytest.mark.parametrize("lifeguard", ["MemCheck", "TaintCheck"])
def test_near_int64_addresses_decline_arithmetic_overflow(lifeguard):
    """int64-representable addresses near 2**63 still decline: computing
    ``address + size`` inside the kernel would wrap int64."""
    run = 32
    base = (1 << 62) + 16
    records = [_store_imm(base + 4 * i) for i in range(run)]
    records.extend(_load_reg(base + 4 * i, i % 4) for i in range(run))
    scalar = _run_engine(_chunked(records), lifeguard, kernels=False)
    vectored = _run_engine(_chunked(records), lifeguard, kernels=True)
    _assert_identical(scalar, vectored)
    # The address-arithmetic kernels decline above the 2**62 admission
    # ceiling; TaintCheck's arithmetic-free IT absorb may still commit.
    assert vectored[4].kernel_fallbacks > 0


# ------------------------------------------------------------------ zero-copy columns


@requires_numpy
def test_memoryview_backed_columns_feed_kernels_zero_copy():
    """Shared-memory style columns (``from_buffers``) reach the kernels as
    views -- no per-row materialisation -- and stay bit-identical."""
    records = stream(n_blocks=2)
    columns = RecordColumns.from_records(records)
    layout, parts = columns.to_buffers()
    backing = bytearray(layout.nbytes)
    for (name, typecode, offset, nbytes), part in zip(layout.fields, parts):
        backing[offset:offset + nbytes] = memoryview(part).cast("B")
    rebuilt = RecordColumns.from_buffers(layout, backing)
    try:
        # The dense columns really are views over the backing buffer, and
        # typed_column() hands the very same view to the kernels.
        assert isinstance(rebuilt.src_addr, memoryview)
        assert rebuilt.typed_column("src_addr") is rebuilt.src_addr

        scalar = _run_engine(_chunked(records), "MemCheck", kernels=False)
        lifeguard = ALL_LIFEGUARDS["MemCheck"]()
        accelerator, dispatcher = build_pipeline(lifeguard)
        engine = ColumnarEngine(dispatcher)
        cycles = engine.consume_columns(rebuilt)
        lifeguard.finalize()
        _assert_identical(scalar, (lifeguard, accelerator, dispatcher, cycles, engine))
        assert engine.kernel_runs > 0
    finally:
        rebuilt.release()


# ------------------------------------------------------------------ optionality


def test_tier_absent_without_numpy(monkeypatch):
    """With numpy unavailable the tier is None and dispatch is scalar."""
    import repro.lba.kernels as kernels

    monkeypatch.setattr(kernels, "_np", None)
    monkeypatch.setattr(kernels, "HAVE_NUMPY", False)
    lifeguard = ALL_LIFEGUARDS["MemCheck"]()
    assert build_tier(lifeguard) is None
    accelerator, dispatcher = build_pipeline(lifeguard)
    engine = ColumnarEngine(dispatcher)
    assert engine._kernel_tier is None
    records = stream(n_blocks=1)
    cycles = engine.consume_columns(RecordColumns.from_records(records))
    lifeguard.finalize()
    scalar = _run_engine(_chunked(records), "MemCheck", kernels=False)
    _assert_identical(scalar, (lifeguard, accelerator, dispatcher, cycles, engine))
    assert engine.kernel_runs == 0
    assert engine.kernel_fallbacks == 0


def test_build_tier_requires_kernel_caps():
    """Lifeguards without ``columnar_kernels`` capabilities get no tier."""
    lockset = ALL_LIFEGUARDS["LockSet"]()
    assert lockset.columnar_kernels() is None
    if HAVE_NUMPY:
        assert build_tier(lockset) is None


def test_min_run_constant_sane():
    assert KERNEL_MIN_RUN >= 2


# ------------------------------------------------------------------ observability


def test_kernel_counters_surface_in_pipeline_snapshot():
    """``collect_pipeline`` reads the tier counters once, at collection."""
    records = stream(n_blocks=1)
    lifeguard = ALL_LIFEGUARDS["MemCheck"]()
    accelerator, dispatcher = build_pipeline(lifeguard)
    engine = ColumnarEngine(dispatcher)
    engine.consume_columns(RecordColumns.from_records(records))
    registry = MetricsRegistry()
    collect_pipeline(registry, dispatcher=dispatcher, accelerator=accelerator,
                     lifeguard=lifeguard, engine=engine)
    snapshot = registry.snapshot()
    assert snapshot["counters"]["dispatch.kernel_runs"] == engine.kernel_runs
    assert snapshot["counters"]["dispatch.kernel_fallbacks"] == engine.kernel_fallbacks
    if HAVE_NUMPY:
        assert engine.kernel_runs > 0

    # Schema stability: the counters exist (as zeros) even without an engine.
    bare = MetricsRegistry()
    collect_pipeline(bare, dispatcher=dispatcher)
    assert bare.snapshot()["counters"]["dispatch.kernel_runs"] >= 0
