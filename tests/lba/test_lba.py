"""Tests for the LBA substrate: records, buffer, timing coupling, platform."""

import pytest

from repro.core.config import BASELINE_CONFIG, OPTIMIZED_CONFIG, LogBufferConfig, SystemConfig
from repro.core.events import AnnotationRecord, EventType, InstructionRecord
from repro.isa.machine import Machine
from repro.lba.log_buffer import LogBuffer
from repro.lba.capture import LogProducer
from repro.lba.platform import LBASystem, run_unmonitored
from repro.lba.record import RecordSizer, encoded_record_size
from repro.lba.timing import CouplingModel
from repro.lifeguards import AddrCheck, MemCheck, TaintCheck
from tests.conftest import build_copy_loop


class TestRecordSize:
    def test_sizes_are_exact_integers(self):
        record = InstructionRecord(pc=1, event_type=EventType.REG_TO_REG, dest_reg=0, src_reg=1)
        size = encoded_record_size(record)
        assert isinstance(size, int)
        assert 1 <= size <= 8

    def test_memory_records_cost_more(self):
        plain = InstructionRecord(pc=1, event_type=EventType.REG_TO_REG)
        memory = InstructionRecord(pc=1, event_type=EventType.MEM_TO_MEM,
                                   dest_addr=1, src_addr=2, size=4)
        assert encoded_record_size(memory) > encoded_record_size(plain)

    def test_stream_sizes_exploit_redundancy(self):
        # Consecutive records of a loop (small pc/address deltas) must cost
        # less in stream context than sized stand-alone.
        records = [
            InstructionRecord(pc=0x4000_0000 + 4 * i, event_type=EventType.MEM_TO_REG,
                              dest_reg=1, src_addr=0x0900_0000 + 4 * i, size=4, is_load=True)
            for i in range(64)
        ]
        sizer = RecordSizer()
        stream_bytes = sum(sizer.size(record) for record in records)
        standalone_bytes = sum(encoded_record_size(record) for record in records)
        assert stream_bytes < standalone_bytes
        # Steady-state loop records cost 6 bytes; only the first (cold
        # delta chains) costs more.
        assert stream_bytes / len(records) <= 6.5

    def test_measure_does_not_advance_stream(self):
        sizer = RecordSizer()
        record = InstructionRecord(pc=0x1234, event_type=EventType.REG_TO_REG, dest_reg=2)
        peeked = sizer.measure(record)
        assert sizer.measure(record) == peeked
        assert sizer.size(record) == peeked
        # After committing, the same pc costs less (delta chain advanced).
        assert sizer.measure(record) < peeked


class TestLogBuffer:
    def test_push_pop_fifo(self):
        buffer = LogBuffer(LogBufferConfig(size_bytes=1024))
        records = [InstructionRecord(pc=i, event_type=EventType.REG_TO_REG) for i in range(5)]
        for record in records:
            assert buffer.push(record)
        assert [buffer.pop().pc for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_full_buffer_rejects_and_counts_stall(self):
        buffer = LogBuffer(LogBufferConfig(size_bytes=16))
        record = AnnotationRecord(EventType.MALLOC, address=1, size=1)
        pushed = 0
        while buffer.push(record):
            pushed += 1
        assert pushed >= 1
        assert buffer.occupancy_bytes <= 16
        assert buffer.stats.producer_stalls == 1
        # A rejected push must not advance the stream state: popping one
        # record frees exactly enough room to push the same record again.
        assert buffer.pop() is not None
        assert buffer.push(record)

    def test_occupancy_is_exact_integer_bytes(self):
        buffer = LogBuffer()
        buffer.push(InstructionRecord(pc=0x100, event_type=EventType.REG_TO_REG, dest_reg=1))
        assert isinstance(buffer.occupancy_bytes, int)
        assert isinstance(buffer.stats.bytes_pushed, int)
        assert isinstance(buffer.stats.high_water_bytes, int)
        assert buffer.occupancy_bytes == buffer.stats.bytes_pushed

    def test_empty_pop_counts_stall(self):
        buffer = LogBuffer()
        assert buffer.pop() is None
        assert buffer.stats.consumer_stalls == 1

    def test_occupancy_tracking(self):
        buffer = LogBuffer()
        buffer.push(InstructionRecord(pc=0, event_type=EventType.REG_TO_REG))
        assert buffer.occupancy_bytes > 0
        buffer.pop()
        assert buffer.occupancy_bytes == 0


class TestCouplingModel:
    def test_fast_lifeguard_tracks_application(self):
        model = CouplingModel(buffer_capacity_records=1000)
        for _ in range(100):
            model.observe(app_cost=2, lifeguard_cost=1)
        breakdown = model.finish()
        assert breakdown.slowdown == pytest.approx(1.0, abs=0.05)

    def test_slow_lifeguard_dominates(self):
        model = CouplingModel(buffer_capacity_records=10)
        for _ in range(100):
            model.observe(app_cost=1, lifeguard_cost=5)
        breakdown = model.finish()
        assert breakdown.slowdown == pytest.approx(5.0, rel=0.1)
        assert breakdown.producer_stall_cycles > 0

    def test_syscall_barrier_stalls_application(self):
        model = CouplingModel(buffer_capacity_records=1000)
        for _ in range(50):
            model.observe(app_cost=1, lifeguard_cost=4)
        before = model.breakdown.app_finish_cycles
        model.observe(app_cost=1, lifeguard_cost=4, syscall_barrier=True)
        assert model.breakdown.syscall_stall_cycles > 0
        assert model.breakdown.app_finish_cycles > before + 1

    def test_buffer_capacity_limits_decoupling(self):
        small = CouplingModel(buffer_capacity_records=2)
        large = CouplingModel(buffer_capacity_records=10_000)
        for _ in range(200):
            small.observe(1, 3)
            large.observe(1, 3)
        assert small.breakdown.application_slowdown > large.breakdown.application_slowdown


class TestProducer:
    def test_producer_counts_costs(self):
        producer = LogProducer(Machine(build_copy_loop()))
        stream = list(producer.stream())
        assert producer.stats.records == len(stream)
        assert producer.stats.app_cycles >= producer.stats.instructions
        assert producer.stats.log_bytes > 0


class TestPlatform:
    def test_monitored_run_produces_result(self):
        system = LBASystem(Machine(build_copy_loop()), AddrCheck(), OPTIMIZED_CONFIG)
        result = system.run("opt")
        assert result.slowdown >= 1.0
        assert result.dispatch.events_handled > 0
        assert result.errors_detected == 0
        assert result.workload == "copy_loop"

    def test_baseline_slower_than_optimized(self):
        base = LBASystem(Machine(build_copy_loop(64)), MemCheck(), BASELINE_CONFIG).run("base")
        opt = LBASystem(Machine(build_copy_loop(64)), MemCheck(), OPTIMIZED_CONFIG).run("opt")
        assert base.slowdown > opt.slowdown

    def test_technique_gating_follows_figure2(self):
        system = LBASystem(Machine(build_copy_loop()), AddrCheck(), OPTIMIZED_CONFIG)
        assert system.accelerator.it is None          # AddrCheck does not use IT
        assert system.accelerator.idempotent_filter is not None
        system = LBASystem(Machine(build_copy_loop()), TaintCheck(), OPTIMIZED_CONFIG)
        assert system.accelerator.it is not None
        assert system.accelerator.idempotent_filter is None

    def test_baseline_config_disables_all_hardware(self):
        system = LBASystem(Machine(build_copy_loop()), MemCheck(), BASELINE_CONFIG)
        assert system.accelerator.it is None
        assert system.accelerator.idempotent_filter is None
        assert system.accelerator.mtlb is None

    def test_mtlb_used_when_lma_enabled(self):
        system = LBASystem(Machine(build_copy_loop(64)), AddrCheck(), OPTIMIZED_CONFIG)
        result = system.run()
        assert result.mapper.mtlb_hits + result.mapper.mtlb_misses == result.mapper.translations
        assert result.mapper.mtlb_hits > 0

    def test_run_unmonitored_matches_app_alone(self):
        cycles = run_unmonitored(Machine(build_copy_loop(32)))
        monitored = LBASystem(Machine(build_copy_loop(32)), AddrCheck(), OPTIMIZED_CONFIG).run()
        assert cycles == pytest.approx(monitored.timing.app_alone_cycles, rel=0.05)
