"""Multi-core platform: routing, forwarding, determinism and timing.

The bit-identical N=1 anchor lives in ``test_conformance_matrix.py``;
these tests cover the genuinely multi-core behaviours: shard routing
policies, cross-core event forwarding (inter-thread inheritance), the
deterministic shard merge, record conservation, per-core log channels
and the generalised coupling recurrence.
"""

import pytest

from repro.core.config import SystemConfig
from repro.core.events import AnnotationRecord, EventType, InstructionRecord
from repro.isa.threads import ThreadedMachine
from repro.lba.multicore import (
    SHARED_STATE_ANNOTATIONS,
    MultiCoreCoupling,
    MultiCoreLBASystem,
    ShardRouter,
)
from repro.lba.platform import LBASystem
from repro.lba.timing import CouplingModel
from repro.lifeguards import ALL_LIFEGUARDS, LockSet
from repro.workloads.base import get_workload
from repro.workloads.bugs import racy_counter_programs


def _multicore(workload, lifeguard, cores, policy="address", scale=0.3, threads=None):
    machine = get_workload(workload, scale=scale, threads=threads).build_machine(
        num_cores=cores
    )
    return MultiCoreLBASystem(
        machine,
        ALL_LIFEGUARDS[lifeguard],
        SystemConfig(),
        num_cores=cores,
        shard_policy=policy,
        workload_name=workload,
    )


class TestShardRouter:
    def test_address_policy_is_stable_per_address(self):
        router = ShardRouter(4, "address")
        load = InstructionRecord(pc=0x1000, event_type=EventType.MEM_TO_REG,
                                 src_addr=0x0900_0040, size=4, is_load=True)
        store = InstructionRecord(pc=0x2000, event_type=EventType.REG_TO_MEM,
                                  dest_addr=0x0900_0040, size=4, is_store=True,
                                  thread_id=3)
        # Same word, different threads: both land on the owning shard.
        assert router.route(load) == router.route(store)

    def test_thread_policy_routes_by_thread(self):
        router = ShardRouter(2, "thread")
        for thread_id in range(4):
            record = InstructionRecord(pc=0, event_type=EventType.MEM_TO_REG,
                                       src_addr=0x1000, size=4, is_load=True,
                                       thread_id=thread_id)
            assert router.route(record) == thread_id % 2

    def test_shared_state_annotations_broadcast(self):
        router = ShardRouter(4, "address")
        lock = AnnotationRecord(EventType.LOCK, address=0x0813_0000, thread_id=1)
        primary = router.route(lock)
        targets = router.forward_targets(lock, primary)
        assert sorted((primary, *targets)) == [0, 1, 2, 3]

    def test_sink_annotations_are_not_broadcast(self):
        router = ShardRouter(4, "address")
        sink = AnnotationRecord(EventType.SYSCALL_WRITE, address=0x1000, size=16)
        assert sink.event_type not in SHARED_STATE_ANNOTATIONS
        assert router.forward_targets(sink, router.route(sink)) == ()

    def test_cross_shard_memory_copy_forwards_to_source(self):
        router = ShardRouter(8, "address")
        copy = InstructionRecord(pc=0, event_type=EventType.MEM_TO_MEM,
                                 dest_addr=0x0900_0000, src_addr=0x0A00_0040,
                                 size=4, is_load=True, is_store=True)
        primary = router.route(copy)
        assert primary == router.shard_of_address(0x0900_0000)
        assert router.forward_targets(copy, primary) == (
            router.shard_of_address(0x0A00_0040),
        )

    def test_no_forwarding_with_one_shard(self):
        router = ShardRouter(1, "address")
        lock = AnnotationRecord(EventType.LOCK, address=0x10)
        assert router.route(lock) == 0
        assert router.forward_targets(lock, 0) == ()

    def test_validation(self):
        with pytest.raises(ValueError, match="num_shards"):
            ShardRouter(0)
        with pytest.raises(ValueError, match="shard policy"):
            ShardRouter(2, "round_robin")


class TestMultiCorePlatform:
    @pytest.mark.parametrize("cores", [2, 4])
    def test_runs_are_deterministic(self, cores):
        first = _multicore("pbzip2", "LockSet", cores).run()
        second = _multicore("pbzip2", "LockSet", cores).run()
        assert first.merged == second.merged
        assert [s.reports for s in first.shards] == [s.reports for s in second.shards]
        assert first.stats == second.stats

    def test_every_record_is_consumed_exactly_once_plus_forwards(self):
        result = _multicore("pbzip2", "MemCheck", 4).run()
        consumed = sum(shard.dispatch.records_consumed for shard in result.shards)
        assert consumed == result.stats.records + result.stats.forwarded_records
        assert sum(shard.forwarded_records for shard in result.shards) == (
            result.stats.forwarded_records
        )

    def test_per_core_channels_cover_the_stream(self):
        result = _multicore("pbzip2", "AddrCheck", 4, threads=4).run()
        # Four worker threads on four cores: every channel carried records,
        # and the channels partition the stream.
        assert all(producer.records for producer in result.producers)
        assert sum(producer.records for producer in result.producers) == (
            result.stats.records
        )
        assert result.merged.producer.records == result.stats.records

    def test_more_cores_do_not_slow_monitoring_down(self):
        """Spreading consumption over shards shrinks the lifeguard bottleneck."""
        finishes = {}
        for cores in (1, 2):
            result = _multicore("mcf", "MemCheck", cores).run()
            finishes[cores] = result.merged.timing.lifeguard_finish_cycles
        assert finishes[2] < finishes[1]

    def test_lockset_race_survives_address_sharding(self):
        """Inter-thread inheritance across shards: the race is still caught.

        Race detection is per-address state (routed to one owning shard)
        refined by per-thread locksets (maintained from the broadcast
        lock/unlock annotations), so address sharding preserves LOCKSET
        reports exactly.
        """
        reference = LBASystem(
            ThreadedMachine(racy_counter_programs()), LockSet(),
            SystemConfig(), workload_name="racy",
        ).run()
        assert reference.reports, "reference run must detect the race"
        sharded = MultiCoreLBASystem(
            ThreadedMachine(racy_counter_programs(), num_cores=2), LockSet,
            SystemConfig(), num_cores=2, shard_policy="address",
            workload_name="racy",
        ).run()
        assert sharded.reports == reference.reports

    def test_thread_sharding_documents_its_precision_loss(self):
        """Thread sharding splits per-address state: the race is missed.

        This is the documented approximation that makes ``address`` the
        default policy; the test pins the behaviour so a silent change to
        either policy is caught.
        """
        sharded = MultiCoreLBASystem(
            ThreadedMachine(racy_counter_programs(), num_cores=2), LockSet,
            SystemConfig(), num_cores=2, shard_policy="thread",
            workload_name="racy",
        ).run()
        assert sharded.reports == []

    def test_validation(self):
        machine = get_workload("mcf", scale=0.2).build_machine()
        with pytest.raises(ValueError, match="num_cores"):
            MultiCoreLBASystem(machine, ALL_LIFEGUARDS["AddrCheck"], num_cores=0)
        with pytest.raises(ValueError, match="trace writer"):
            MultiCoreLBASystem(machine, ALL_LIFEGUARDS["AddrCheck"], num_cores=2,
                               trace_writers=[None])


class TestMultiCoreCoupling:
    def test_single_pair_reduces_to_dual_core_model(self):
        """1×1 multi-core coupling is bit-identical to ``CouplingModel``."""
        import random

        rng = random.Random(5)
        reference = CouplingModel(8)
        multicore = MultiCoreCoupling(1, 1, 8)
        for _ in range(500):
            app = rng.randrange(1, 20)
            lifeguard = rng.randrange(0, 30)
            barrier = rng.random() < 0.05
            reference.observe(app, lifeguard, syscall_barrier=barrier)
            multicore.observe(0, 0, app, lifeguard, syscall_barrier=barrier)
        assert multicore.finish()[0] == reference.finish()

    def test_syscall_barrier_drains_every_shard(self):
        coupling = MultiCoreCoupling(1, 2, 8)
        coupling.observe(0, 0, 1, 100)           # shard 0 falls far behind
        coupling.observe(0, 1, 1, 1)
        coupling.observe(0, 1, 1, 1, syscall_barrier=True)
        breakdown = coupling.finish()[1]
        # The barrier waited for shard 0's backlog, not just shard 1's.
        assert breakdown.syscall_stall_cycles > 90

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            MultiCoreCoupling(1, 1, 0)
