"""Detection correctness of the five lifeguards (Table 1 semantics).

Every buggy/exploited program must be flagged both on the LBA baseline and
with the full acceleration framework enabled (the accelerators must never
mask a detection), and the clean control programs must stay silent.
"""

import pytest

from repro.core.config import BASELINE_CONFIG, OPTIMIZED_CONFIG
from repro.isa.machine import Machine
from repro.isa.threads import ThreadedMachine
from repro.lba.platform import LBASystem
from repro.lifeguards import AddrCheck, LockSet, MemCheck, TaintCheck, TaintCheckDetailed
from repro.lifeguards.reports import ErrorKind
from repro.workloads import attacks, bugs

CONFIGS = [("baseline", BASELINE_CONFIG), ("optimized", OPTIMIZED_CONFIG)]


def run(program, lifeguard, config):
    machine = ThreadedMachine(program) if isinstance(program, list) else Machine(program)
    return LBASystem(machine, lifeguard, config).run()


def kinds(result):
    return {report.kind for report in result.reports}


@pytest.mark.parametrize("config_name,config", CONFIGS)
class TestAddrCheckDetection:
    def test_use_after_free(self, config_name, config):
        result = run(bugs.use_after_free(), AddrCheck(), config)
        assert ErrorKind.INVALID_ACCESS in kinds(result)

    def test_heap_overflow_write(self, config_name, config):
        result = run(bugs.heap_overflow_write(), AddrCheck(), config)
        assert ErrorKind.INVALID_ACCESS in kinds(result)

    def test_double_free(self, config_name, config):
        result = run(bugs.double_free(), AddrCheck(), config)
        assert ErrorKind.DOUBLE_FREE in kinds(result)

    def test_invalid_free(self, config_name, config):
        result = run(bugs.invalid_free(), AddrCheck(), config)
        assert ErrorKind.INVALID_FREE in kinds(result)

    def test_memory_leak(self, config_name, config):
        result = run(bugs.memory_leak(), AddrCheck(), config)
        assert ErrorKind.MEMORY_LEAK in kinds(result)

    def test_clean_program_is_silent(self, config_name, config):
        result = run(bugs.harmless_uninitialized_copy(), AddrCheck(), config)
        assert result.reports == []


@pytest.mark.parametrize("config_name,config", CONFIGS)
class TestMemCheckDetection:
    def test_uninitialized_computation(self, config_name, config):
        result = run(bugs.uninitialized_computation(), MemCheck(), config)
        assert ErrorKind.UNINITIALIZED_USE in kinds(result)

    def test_uninitialized_condition(self, config_name, config):
        result = run(bugs.uninitialized_condition(), MemCheck(), config)
        assert ErrorKind.UNINITIALIZED_USE in kinds(result)

    def test_uninitialized_pointer_dereference(self, config_name, config):
        result = run(bugs.uninitialized_pointer_dereference(), MemCheck(), config)
        assert ErrorKind.UNINITIALIZED_USE in kinds(result)

    def test_use_after_free_also_detected(self, config_name, config):
        result = run(bugs.use_after_free(), MemCheck(), config)
        assert ErrorKind.INVALID_ACCESS in kinds(result)

    def test_harmless_uninitialized_copy_not_reported(self, config_name, config):
        result = run(bugs.harmless_uninitialized_copy(), MemCheck(), config)
        assert ErrorKind.UNINITIALIZED_USE not in kinds(result)


@pytest.mark.parametrize("config_name,config", CONFIGS)
class TestTaintCheckDetection:
    def test_function_pointer_overwrite(self, config_name, config):
        result = run(attacks.buffer_overflow_function_pointer(), TaintCheck(), config)
        assert ErrorKind.TAINT_VIOLATION in kinds(result)

    def test_format_string_attack(self, config_name, config):
        result = run(attacks.format_string_attack(), TaintCheck(), config)
        assert ErrorKind.TAINT_VIOLATION in kinds(result)

    def test_syscall_argument_attack(self, config_name, config):
        result = run(attacks.syscall_argument_attack(), TaintCheck(), config)
        assert ErrorKind.TAINT_VIOLATION in kinds(result)

    def test_benign_input_is_silent(self, config_name, config):
        result = run(attacks.benign_input_processing(), TaintCheck(), config)
        assert result.reports == []

    def test_detailed_variant_detects_and_records_trail(self, config_name, config):
        lifeguard = TaintCheckDetailed()
        result = run(attacks.buffer_overflow_function_pointer(), lifeguard, config)
        assert ErrorKind.TAINT_VIOLATION in kinds(result)
        violation = result.reports[0]
        assert violation.lifeguard == "TaintCheckDetailed"


@pytest.mark.parametrize("config_name,config", CONFIGS)
class TestLockSetDetection:
    def test_unprotected_counter_race(self, config_name, config):
        result = run(bugs.racy_counter_programs(), LockSet(), config)
        assert ErrorKind.DATA_RACE in kinds(result)

    def test_inconsistent_locking_race(self, config_name, config):
        result = run(bugs.inconsistent_locking_programs(), LockSet(), config)
        assert ErrorKind.DATA_RACE in kinds(result)

    def test_consistently_locked_counter_is_silent(self, config_name, config):
        result = run(bugs.locked_counter_programs(), LockSet(), config)
        assert ErrorKind.DATA_RACE not in kinds(result)


class TestLockSetStateMachine:
    def test_exclusive_then_shared_transitions(self):
        from repro.core.events import DeliveredEvent, EventType
        from repro.lifeguards.lockset import (
            STATE_EXCLUSIVE, STATE_SHARED_MODIFIED, STATE_SHARED_READ, LockSet as LS,
        )

        lockset = LS()
        word = 0x0811_0000
        lock_event = DeliveredEvent(EventType.LOCK, dest_addr=0x0813_0000, thread_id=0)
        lockset._on_lock(lock_event)
        lockset._on_store(DeliveredEvent(EventType.MEM_STORE, dest_addr=word, size=4, thread_id=0))
        assert lockset.location_state(word)[0] == STATE_EXCLUSIVE
        lockset._on_load(DeliveredEvent(EventType.MEM_LOAD, src_addr=word, size=4, thread_id=1))
        assert lockset.location_state(word)[0] == STATE_SHARED_READ
        lockset._on_store(DeliveredEvent(EventType.MEM_STORE, dest_addr=word, size=4, thread_id=1))
        assert lockset.location_state(word)[0] == STATE_SHARED_MODIFIED

    def test_unlock_not_held_reported(self):
        from repro.core.events import DeliveredEvent, EventType

        lockset = LockSet()
        lockset._on_unlock(DeliveredEvent(EventType.UNLOCK, dest_addr=0x0813_0000, thread_id=0))
        assert lockset.reports_of(ErrorKind.UNLOCK_NOT_HELD)


class TestTaintTrail:
    def test_detailed_tracking_reconstructs_provenance(self):
        from repro.core.events import DeliveredEvent, EventType

        lifeguard = TaintCheckDetailed()
        source = 0x0900_0000
        staging = 0x0900_0100
        lifeguard._on_taint_source(
            DeliveredEvent(EventType.SYSCALL_READ, dest_addr=source, size=16)
        )
        lifeguard._on_mem_to_mem(
            DeliveredEvent(EventType.MEM_TO_MEM, src_addr=source, dest_addr=staging, size=4, pc=0x42)
        )
        trail = lifeguard.taint_trail(staging)
        assert trail
        assert trail[0].from_address == source
        assert trail[0].pc == 0x42

    def test_untainted_word_has_no_origin(self):
        lifeguard = TaintCheckDetailed()
        assert lifeguard.origin_of(0x0900_0500) is None
        assert lifeguard.taint_trail(0x0900_0500) == []
