"""Property-based equivalence: acceleration must not change lifeguard conclusions.

Inheritance Tracking, Idempotent Filters and the M-TLB are performance
mechanisms; for any program, a lifeguard's *metadata conclusions* about
memory must be the same whether or not the hardware is enabled (modulo the
deliberately weaker treatment of non-unary taint propagation, which only
ever makes accelerated TAINTCHECK report *fewer* taints, never more).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import BASELINE_CONFIG, OPTIMIZED_CONFIG
from repro.isa.machine import Machine
from repro.lba.platform import LBASystem
from repro.lifeguards import AddrCheck, MemCheck, TaintCheck
from repro.workloads.generator import GeneratorConfig, generate_program


def _run(lifeguard, program, config):
    result = LBASystem(Machine(program), lifeguard, config).run()
    return lifeguard, result


def _taint_snapshot(lifeguard: TaintCheck, base: int, size: int):
    return [lifeguard.taint.read_bits(base + i, 2) & 1 for i in range(size)]


class TestTaintEquivalence:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_accelerated_taint_is_subset_of_baseline(self, seed):
        config = GeneratorConfig(operations=120, array_words=32, with_tainted_input=True)
        program = generate_program(seed, config)

        baseline_lifeguard, baseline = _run(TaintCheck(), program, BASELINE_CONFIG)
        optimized_lifeguard, optimized = _run(
            TaintCheck(), generate_program(seed, config), OPTIMIZED_CONFIG
        )
        # Compare final taint over the heap region both programs used.
        heap_base = 0x0900_0000
        span = 32 * 4 * 4
        base_taint = _taint_snapshot(baseline_lifeguard, heap_base, span)
        opt_taint = _taint_snapshot(optimized_lifeguard, heap_base, span)
        for address, (base_bit, opt_bit) in enumerate(zip(base_taint, opt_taint)):
            # unary-only propagation may clear taint that generic propagation
            # kept (non-unary results), but must never invent taint
            if opt_bit:
                assert base_bit, f"acceleration invented taint at heap+{address:#x}"

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_clean_generated_programs_stay_clean(self, seed):
        program = generate_program(seed, GeneratorConfig(operations=100, array_words=24))
        for lifeguard_cls in (AddrCheck, MemCheck, TaintCheck):
            lifeguard, result = _run(lifeguard_cls(), program, OPTIMIZED_CONFIG)
            assert result.reports == [], (lifeguard_cls.__name__, result.reports[:3])


class TestDetectionEquivalence:
    @given(seed=st.integers(0, 5_000))
    @settings(max_examples=6, deadline=None)
    def test_error_counts_match_between_configs_for_memcheck(self, seed):
        program = generate_program(seed, GeneratorConfig(operations=80, array_words=16))
        _, baseline = _run(MemCheck(), program, BASELINE_CONFIG)
        _, optimized = _run(MemCheck(), generate_program(
            seed, GeneratorConfig(operations=80, array_words=16)), OPTIMIZED_CONFIG)
        assert len(baseline.reports) == len(optimized.reports) == 0

    def test_slowdown_never_below_one(self):
        program = generate_program(3, GeneratorConfig(operations=150))
        for config in (BASELINE_CONFIG, OPTIMIZED_CONFIG):
            _, result = _run(AddrCheck(), program, config)
            assert result.slowdown >= 0.99
