"""Tests for the application memory substrate (address space, allocator, shadow maps)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.address_space import AddressSpace, SegmentLayout
from repro.memory.allocator import AllocationError, HeapAllocator
from repro.memory.shadow import (
    OneLevelShadowMap,
    TwoLevelShadowMap,
    metadata_translation_cost,
)


class TestAddressSpace:
    def test_read_write_roundtrip(self):
        memory = AddressSpace()
        memory.write(0x1000, b"hello world")
        assert memory.read(0x1000, 11) == b"hello world"

    def test_unwritten_memory_reads_zero(self):
        memory = AddressSpace()
        assert memory.read(0x5000, 8) == b"\x00" * 8

    def test_cross_page_access(self):
        memory = AddressSpace()
        address = 0x1FFC                      # spans a 4 KiB page boundary
        memory.write_uint(address, 0xDEADBEEF, 4)
        assert memory.read_uint(address, 4) == 0xDEADBEEF

    def test_uint_truncates_to_size(self):
        memory = AddressSpace()
        memory.write_uint(0x2000, 0x1_2345_6789, 4)
        assert memory.read_uint(0x2000, 4) == 0x2345_6789

    def test_copy_and_fill(self):
        memory = AddressSpace()
        memory.fill(0x3000, 16, 0xAB)
        memory.copy(0x4000, 0x3000, 16)
        assert memory.read(0x4000, 16) == b"\xab" * 16

    def test_footprint_tracking(self):
        memory = AddressSpace()
        memory.write_uint(0x1000, 1)
        memory.write_uint(0x9000, 1)
        assert memory.touched_page_count() == 2
        ranges = list(memory.touched_ranges())
        assert len(ranges) == 2

    def test_out_of_range_rejected(self):
        memory = AddressSpace()
        with pytest.raises(ValueError):
            memory.read(0xFFFF_FFFF, 8)

    def test_segment_layout_validation(self):
        with pytest.raises(ValueError):
            SegmentLayout(code_base=0x9000_0000, stack_top=0x1000_0000)

    @given(address=st.integers(0x1000, 0xF000), data=st.binary(min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, address, data):
        memory = AddressSpace()
        memory.write(address, data)
        assert memory.read(address, len(data)) == data


class TestHeapAllocator:
    def test_malloc_returns_aligned_disjoint_blocks(self):
        allocator = HeapAllocator(0x1000, 4096)
        a = allocator.malloc(24)
        b = allocator.malloc(40)
        assert a.address % HeapAllocator.ALIGNMENT == 0
        assert b.address >= a.address + 24

    def test_free_and_reuse(self):
        allocator = HeapAllocator(0x1000, 4096)
        a = allocator.malloc(64)
        allocator.free(a.address)
        b = allocator.malloc(32)
        assert b.address == a.address

    def test_double_free_raises(self):
        allocator = HeapAllocator(0x1000, 4096)
        a = allocator.malloc(16)
        allocator.free(a.address)
        with pytest.raises(AllocationError):
            allocator.free(a.address)

    def test_invalid_free_raises(self):
        allocator = HeapAllocator(0x1000, 4096)
        allocator.malloc(16)
        with pytest.raises(AllocationError):
            allocator.free(0x1008)

    def test_out_of_memory(self):
        allocator = HeapAllocator(0x1000, 128)
        with pytest.raises(AllocationError):
            allocator.malloc(4096)

    def test_realloc_preserves_identity(self):
        allocator = HeapAllocator(0x1000, 4096)
        a = allocator.malloc(32)
        old, new = allocator.realloc(a.address, 64)
        assert old.address == a.address
        assert allocator.is_allocated(new.address)

    def test_block_containing(self):
        allocator = HeapAllocator(0x1000, 4096)
        a = allocator.malloc(32)
        assert allocator.block_containing(a.address + 10) is not None
        assert allocator.block_containing(a.address + 100) is None

    def test_coalescing_allows_large_realloc(self):
        allocator = HeapAllocator(0x1000, 256)
        blocks = [allocator.malloc(32) for _ in range(4)]
        for block in blocks:
            allocator.free(block.address)
        big = allocator.malloc(200)        # only possible if free space coalesced
        assert big.size == 200

    @given(ops=st.lists(st.integers(8, 128), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_live_blocks_never_overlap(self, ops):
        allocator = HeapAllocator(0x10000, 1 << 20)
        live = []
        for i, size in enumerate(ops):
            if live and i % 3 == 0:
                allocator.free(live.pop().address)
            else:
                live.append(allocator.malloc(size))
        blocks = sorted(allocator.live_blocks(), key=lambda b: b.address)
        for first, second in zip(blocks, blocks[1:]):
            assert first.address + first.size <= second.address


class TestShadowMaps:
    def test_two_level_bit_roundtrip(self):
        shadow = TwoLevelShadowMap(16, 14, 1)
        shadow.write_bits(0x0900_1234, 2, 0b11)
        assert shadow.read_bits(0x0900_1234, 2) == 0b11
        assert shadow.read_bits(0x0900_1235, 2) == 0

    def test_two_level_translation_is_stable(self):
        shadow = TwoLevelShadowMap(16, 14, 1)
        first = shadow.translate(0x0900_0000)
        second = shadow.translate(0x0900_0004)
        assert second == first + 1
        assert shadow.translate(0x0900_0000) == first

    def test_lazy_chunk_allocation(self):
        shadow = TwoLevelShadowMap(16, 14, 1)
        assert shadow.allocated_chunks() == 0
        shadow.write_bits(0x0900_0000, 2, 1)
        shadow.write_bits(0xBFFF_0000, 2, 1)
        assert shadow.allocated_chunks() == 2

    def test_fill_bits_sets_whole_range(self):
        shadow = TwoLevelShadowMap(16, 14, 1)
        shadow.fill_bits(0x0900_0002, 10, 2, 0b01)
        assert all(shadow.read_bits(0x0900_0002 + i, 2) == 0b01 for i in range(10))
        assert shadow.read_bits(0x0900_0001, 2) == 0
        assert shadow.read_bits(0x0900_000C, 2) == 0

    def test_wide_elements(self):
        shadow = TwoLevelShadowMap(16, 14, 8)
        shadow.write_element(0x0900_0000, 0xDEADBEEF_CAFEF00D)
        assert shadow.read_element(0x0900_0003) == 0xDEADBEEF_CAFEF00D

    def test_one_level_map(self):
        shadow = OneLevelShadowMap(app_bytes_per_element=4, element_size=1)
        shadow.write_element(0x0900_0000, 7)
        assert shadow.read_element(0x0900_0003) == 7
        assert shadow.translate(0x0900_0004) == shadow.translate(0x0900_0000) + 1

    def test_one_level_rejects_dense_metadata(self):
        with pytest.raises(ValueError):
            OneLevelShadowMap(app_bytes_per_element=4, element_size=8)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            TwoLevelShadowMap(20, 14, 1)
        with pytest.raises(ValueError):
            TwoLevelShadowMap(16, 14, 3)

    def test_translation_cost_model(self):
        software = metadata_translation_cost("two-level", lma_enabled=False)
        lma = metadata_translation_cost("two-level", lma_enabled=True)
        assert software.instructions == 5 and software.memory_accesses == 1
        assert lma.instructions == 1 and lma.memory_accesses == 0
        assert metadata_translation_cost("one-level", False).instructions == 2
        with pytest.raises(ValueError):
            metadata_translation_cost("three-level", True)

    @given(
        addresses=st.lists(st.integers(0x0900_0000, 0x0900_4000), min_size=1, max_size=60),
        bits=st.sampled_from([1, 2]),
    )
    @settings(max_examples=40, deadline=None)
    def test_two_level_write_read_property(self, addresses, bits):
        shadow = TwoLevelShadowMap(16, 14, 1)
        expected = {}
        for i, address in enumerate(addresses):
            value = i % (1 << bits)
            shadow.write_bits(address, bits, value)
            expected[address] = value
        for address, value in expected.items():
            assert shadow.read_bits(address, bits) == value
