"""Property tests: shadow maps against a plain-dict reference model.

The flat ``bytearray``/``array``-backed storage of both shadow-map designs
must behave exactly like the obvious model -- a dict from element-aligned
address to element value, with ``write_bits``/``fill_bits`` decomposed into
per-byte field updates.  Hypothesis drives interleaved write/fill/read
sequences whose addresses are biased onto level-2 chunk boundaries (two
level design) and page boundaries (one-level design), the places where the
vectorized slice-assignment fast paths split their work, and checks

* every element and bit-field read matches the model,
* ``metadata_bytes()`` accounting matches the model exactly: chunk
  granularity (reserved chunks x chunk size) for the two-level design,
  distinct-written-elements x element size for the one-level design.
"""

import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.memory.shadow import OneLevelShadowMap, TwoLevelShadowMap

#: Base application address the generated accesses spread out from.
BASE = 0x0900_0000


class DictModel:
    """Reference semantics: element-aligned dict plus touched-element set."""

    def __init__(self, app_bytes_per_element: int, element_size: int) -> None:
        self.per_element = app_bytes_per_element
        self.element_mask = (1 << (8 * element_size)) - 1
        self.elements = {}
        self.touched = set()

    def _base(self, address: int) -> int:
        return address - address % self.per_element

    def write_element(self, address: int, value: int) -> None:
        base = self._base(address)
        self.elements[base] = value & self.element_mask
        self.touched.add(base)

    def read_element(self, address: int) -> int:
        return self.elements.get(self._base(address), 0)

    def write_bits(self, address: int, bits: int, value: int) -> None:
        mask = (1 << bits) - 1
        shift = (address % self.per_element) * bits
        element = self.read_element(address)
        element = (element & ~(mask << shift)) | ((value & mask) << shift)
        self.write_element(address, element)

    def read_bits(self, address: int, bits: int) -> int:
        shift = (address % self.per_element) * bits
        return (self.read_element(address) >> shift) & ((1 << bits) - 1)

    def fill_bits(self, start: int, size: int, bits: int, value: int) -> None:
        """Mirror the documented fill decomposition: partial edge elements
        are per-byte read-modify-writes, fully covered elements are
        overwritten with the replicated field pattern (the wide-store
        semantics the vectorized fast paths implement)."""
        value &= (1 << bits) - 1
        end = start + size
        addr = start
        while addr < end and addr % self.per_element:
            self.write_bits(addr, bits, value)
            addr += 1
        pattern = 0
        for index in range(self.per_element):
            pattern |= value << (index * bits)
        while addr + self.per_element <= end:
            self.write_element(addr, pattern)
            addr += self.per_element
        while addr < end:
            self.write_bits(addr, bits, value)
            addr += 1


def _offsets(boundary: int):
    """Offsets biased onto the interesting boundaries of the structure."""
    near_boundary = st.builds(
        lambda chunk, delta: max(0, chunk * boundary + delta),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=-8, max_value=8),
    )
    return st.one_of(near_boundary, st.integers(min_value=0, max_value=4 * boundary))


def _operations(boundary: int):
    offsets = _offsets(boundary)
    return st.lists(
        st.one_of(
            st.tuples(st.just("write_element"), offsets,
                      st.integers(min_value=0, max_value=0xFFFF_FFFF)),
            st.tuples(st.just("write_bits"), offsets,
                      st.sampled_from([1, 2]), st.integers(min_value=0, max_value=3)),
            st.tuples(st.just("fill"), offsets,
                      st.integers(min_value=1, max_value=3 * boundary),
                      st.sampled_from([1, 2]), st.integers(min_value=0, max_value=3)),
        ),
        max_size=30,
    )


def _apply(shadow, model, operations):
    reads = []
    for operation in operations:
        if operation[0] == "write_element":
            _, offset, value = operation
            shadow.write_element(BASE + offset, value)
            model.write_element(BASE + offset, value)
        elif operation[0] == "write_bits":
            _, offset, bits, value = operation
            shadow.write_bits(BASE + offset, bits, value)
            model.write_bits(BASE + offset, bits, value)
        else:
            _, offset, size, bits, value = operation
            shadow.fill_bits(BASE + offset, size, bits, value)
            model.fill_bits(BASE + offset, size, bits, value)
        reads.append(operation[1])
    return reads


def _assert_reads_match(shadow, model, touched_offsets):
    probes = set()
    for offset in touched_offsets:
        probes.update((offset - 1, offset, offset + 1, offset + model.per_element))
    for offset in probes:
        if offset < 0:
            continue
        address = BASE + offset
        assert shadow.read_element(address) == model.read_element(address)
        assert shadow.read_bits(address, 2) == model.read_bits(address, 2)


class TestTwoLevelAgainstDictModel:
    # level1_bits=26, level2_bits=4, element 1B covering 4 app bytes:
    # small chunks (16 elements / 64 app bytes) so sequences routinely span
    # several level-2 chunks and exercise the per-chunk fill splitting.
    def _shadow(self):
        return TwoLevelShadowMap(level1_bits=26, level2_bits=4, element_size=1)

    @settings(max_examples=120, deadline=None)
    @given(operations=_operations(boundary=64))
    def test_contents_match(self, operations):
        shadow = self._shadow()
        model = DictModel(shadow.app_bytes_per_element, shadow.element_size)
        touched = _apply(shadow, model, operations)
        _assert_reads_match(shadow, model, touched)

    @settings(max_examples=120, deadline=None)
    @given(operations=_operations(boundary=64))
    def test_metadata_bytes_is_chunk_granular(self, operations):
        shadow = self._shadow()
        model = DictModel(shadow.app_bytes_per_element, shadow.element_size)
        _apply(shadow, model, operations)
        chunk_app_span = (1 << shadow.level2_bits) * shadow.app_bytes_per_element
        written_chunks = {base // chunk_app_span for base in model.touched}
        # every written element's chunk is accounted; translation-only
        # touches may reserve more (write-free reservations are legal)
        assert shadow.allocated_chunks() >= len(written_chunks)
        assert shadow.metadata_bytes() == (
            shadow.allocated_chunks() * shadow.chunk_size_bytes()
        )

    @settings(max_examples=60, deadline=None)
    @given(operations=_operations(boundary=64))
    def test_wide_elements_match(self, operations):
        shadow = TwoLevelShadowMap(level1_bits=26, level2_bits=4, element_size=4)
        model = DictModel(shadow.app_bytes_per_element, shadow.element_size)
        touched = _apply(shadow, model, operations)
        _assert_reads_match(shadow, model, touched)


class TestOneLevelAgainstDictModel:
    # page = 4096 elements x 4 app bytes: bias offsets onto the page seam.
    PAGE_APP_SPAN = 4096 * 4

    def _shadow(self):
        return OneLevelShadowMap(app_bytes_per_element=4, element_size=1)

    @settings(max_examples=120, deadline=None)
    @given(operations=_operations(boundary=PAGE_APP_SPAN))
    def test_contents_match(self, operations):
        shadow = self._shadow()
        model = DictModel(shadow.app_bytes_per_element, shadow.element_size)
        touched = _apply(shadow, model, operations)
        _assert_reads_match(shadow, model, touched)

    @settings(max_examples=120, deadline=None)
    @given(operations=_operations(boundary=PAGE_APP_SPAN))
    def test_metadata_bytes_counts_distinct_written_elements(self, operations):
        """One-level accounting is exact: distinct elements ever written
        (even with value zero, even via page-spanning fills) x element size."""
        shadow = self._shadow()
        model = DictModel(shadow.app_bytes_per_element, shadow.element_size)
        _apply(shadow, model, operations)
        assert shadow.metadata_bytes() == len(model.touched) * shadow.element_size

    @settings(max_examples=60, deadline=None)
    @given(
        start_delta=st.integers(min_value=-6, max_value=6),
        size=st.integers(min_value=1, max_value=3 * PAGE_APP_SPAN),
    )
    def test_page_spanning_fill(self, start_delta, size):
        """Fills crossing the page seam land on both sides and account each
        written element exactly once."""
        shadow = self._shadow()
        model = DictModel(shadow.app_bytes_per_element, shadow.element_size)
        start = BASE + self.PAGE_APP_SPAN + start_delta
        shadow.fill_bits(start, size, 2, 0b01)
        model.fill_bits(start, size, 2, 0b01)
        for probe in (start - 1, start, start + size - 1, start + size):
            assert shadow.read_element(probe) == model.read_element(probe)
        assert shadow.metadata_bytes() == len(model.touched) * shadow.element_size
