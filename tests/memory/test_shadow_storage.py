"""Tests for the flat (bytearray/array) shadow-map storage and fill fast path.

The storage rework replaced dict-of-dict chunks with contiguous buffers and
added a vectorized whole-chunk ``fill_bits`` path; these tests pin down the
behaviours the rest of the system relies on: sparse reads return 0, fills
spanning level-2 chunk boundaries land on both sides, ``metadata_bytes()``
semantics are unchanged, and the read/write counters charge exactly what
the element-at-a-time reference path would.
"""

from hypothesis import given, settings, strategies as st

from repro.memory.shadow import OneLevelShadowMap, TwoLevelShadowMap


class TestTwoLevelStorage:
    def test_sparse_reads_return_zero_without_allocating(self):
        shadow = TwoLevelShadowMap(16, 14, 1)
        assert shadow.read_element(0x0900_0000) == 0
        assert shadow.read_bits(0xBFFF_1234, 2) == 0
        assert shadow.allocated_chunks() == 0
        assert shadow.metadata_bytes() == 0

    def test_translate_reserves_range_without_materializing_buffer(self):
        """Read-only (translation) touches must not cost chunk_size bytes."""
        shadow = TwoLevelShadowMap(16, 14, 1)
        first = shadow.translate(0x0900_0000)
        assert shadow.translate(0x0900_0000) == first     # stable base
        assert shadow.allocated_chunks() == 1             # range reserved...
        assert not shadow._chunks                         # ...but no buffer yet
        assert shadow.read_element(0x0900_0000) == 0
        shadow.write_element(0x0900_0000, 1)              # first write materializes
        assert len(shadow._chunks) == 1
        assert shadow.read_element(0x0900_0000) == 1

    def test_write_allocates_exactly_one_chunk(self):
        shadow = TwoLevelShadowMap(16, 14, 1)
        shadow.write_element(0x0900_0000, 0xAB)
        assert shadow.allocated_chunks() == 1
        assert shadow.metadata_bytes() == shadow.chunk_size_bytes()
        assert shadow.read_element(0x0900_0000) == 0xAB
        # neighbouring elements of the same chunk read zero
        assert shadow.read_element(0x0900_0004) == 0

    def test_write_element_single_index_computation(self):
        """translate() and write_element agree on the element location."""
        shadow = TwoLevelShadowMap(16, 14, 1)
        address = 0x0900_1234
        metadata_address = shadow.translate(address)
        shadow.write_element(address, 7)
        offset = metadata_address - shadow._chunk_bases[shadow.level1_index(address)]
        assert shadow._chunks[shadow.level1_index(address)][offset] == 7

    def test_fill_spans_level2_chunk_boundary(self):
        # level1_bits=16 -> one chunk covers 2**16 application bytes.
        shadow = TwoLevelShadowMap(16, 14, 1)
        chunk_span = 1 << 16
        start = 0x0900_0000 + chunk_span - 24   # 24 bytes in chunk A...
        shadow.fill_bits(start, 48, 2, 0b01)    # ...24 bytes in chunk B
        assert shadow.allocated_chunks() == 2
        for i in range(48):
            assert shadow.read_bits(start + i, 2) == 0b01
        assert shadow.read_bits(start - 1, 2) == 0
        assert shadow.read_bits(start + 48, 2) == 0
        assert shadow.metadata_bytes() == 2 * shadow.chunk_size_bytes()

    def test_fill_spans_many_small_chunks(self):
        # Tiny geometry: 4-bit level-2 index, 16 app bytes per element (so a
        # 2-byte element holds the 16 one-bit fields) -> one chunk covers
        # 256 application bytes.
        shadow = TwoLevelShadowMap(24, 4, 2)
        start, size = 0x0900_0010, 3 * 256
        shadow.fill_bits(start, size, 1, 1)
        assert shadow.allocated_chunks() == 4
        assert all(shadow.read_bits(start + i, 1) == 1 for i in range(0, size, 37))
        assert shadow.read_bits(start - 1, 1) == 0
        assert shadow.read_bits(start + size, 1) == 0

    def test_fill_with_unaligned_partial_elements(self):
        shadow = TwoLevelShadowMap(16, 14, 1)
        shadow.fill_bits(0x0900_0002, 9, 2, 0b11)
        assert all(shadow.read_bits(0x0900_0002 + i, 2) == 0b11 for i in range(9))
        assert shadow.read_bits(0x0900_0001, 2) == 0
        assert shadow.read_bits(0x0900_000B, 2) == 0

    def test_fill_counters_match_element_reference(self):
        """The vectorized fill charges exactly the reference write pattern:
        one write per full element, one read+write per partial byte."""
        shadow = TwoLevelShadowMap(16, 14, 1)
        per_element = shadow.app_bytes_per_element
        start, size = 0x0900_0002, 26
        lead = per_element - (start % per_element)            # 2 partial bytes
        trail = (start + size) % per_element                  # trailing partials
        full = (size - lead - trail) // per_element
        shadow.fill_bits(start, size, 2, 0b01)
        assert shadow.writes == lead + trail + full
        assert shadow.reads == lead + trail                   # write_bits RMW

    def test_wide_element_storage(self):
        for element_size, value in ((2, 0xBEEF), (4, 0xDEAD_BEEF), (8, 0xDEADBEEF_CAFEF00D)):
            shadow = TwoLevelShadowMap(16, 14, element_size)
            shadow.write_element(0x0900_0000, value)
            assert shadow.read_element(0x0900_0000) == value
            assert shadow.read_element(0x0900_0004) == 0
            assert shadow.metadata_bytes() == shadow.chunk_size_bytes()

    def test_wide_element_fill(self):
        shadow = TwoLevelShadowMap(16, 14, 8)
        shadow.fill_bits(0x0900_0000, 64, 2, 0b10)
        expected = sum(0b10 << (i * 2) for i in range(shadow.app_bytes_per_element))
        assert shadow.read_element(0x0900_0000) == expected
        assert shadow.read_element(0x0900_003C) == expected
        assert shadow.read_element(0x0900_0040) == 0

    @given(
        start=st.integers(0x0900_0000, 0x0901_0000),
        size=st.integers(1, 4096),
        value=st.integers(0, 3),
    )
    @settings(max_examples=60, deadline=None)
    def test_fill_matches_per_byte_reference(self, start, size, value):
        """Vectorized fill agrees with a per-byte write_bits reference."""
        fast = TwoLevelShadowMap(16, 14, 1)
        fast.fill_bits(start, size, 2, value)
        reference = TwoLevelShadowMap(16, 14, 1)
        for i in range(size):
            reference.write_bits(start + i, 2, value)
        probes = {start - 1, start, start + size // 2, start + size - 1, start + size}
        for address in probes:
            assert fast.read_bits(address, 2) == reference.read_bits(address, 2)


class TestOneLevelStorage:
    def test_sparse_reads_return_zero(self):
        shadow = OneLevelShadowMap(app_bytes_per_element=4, element_size=1)
        assert shadow.read_element(0x0900_0000) == 0
        assert shadow.metadata_bytes() == 0

    def test_metadata_bytes_counts_distinct_written_elements(self):
        shadow = OneLevelShadowMap(app_bytes_per_element=4, element_size=1)
        shadow.write_element(0x0900_0000, 5)
        shadow.write_element(0x0900_0000, 9)      # same element rewritten
        assert shadow.metadata_bytes() == 1
        shadow.write_element(0x0900_0004, 0)      # zero value still counts
        assert shadow.metadata_bytes() == 2
        shadow.write_element(0xA000_0000, 1)      # far away: new page
        assert shadow.metadata_bytes() == 3

    def test_metadata_bytes_scales_with_element_size(self):
        shadow = OneLevelShadowMap(app_bytes_per_element=4, element_size=4)
        shadow.write_element(0x0900_0000, 0x1234_5678)
        shadow.write_element(0x0900_0004, 1)
        assert shadow.metadata_bytes() == 8
        assert shadow.read_element(0x0900_0000) == 0x1234_5678

    def test_fill_counts_every_covered_element_once(self):
        shadow = OneLevelShadowMap(app_bytes_per_element=4, element_size=1)
        shadow.fill_bits(0x0900_0000, 64, 2, 0b01)
        assert shadow.metadata_bytes() == 16
        shadow.fill_bits(0x0900_0000, 64, 2, 0b11)  # refill: same elements
        assert shadow.metadata_bytes() == 16
        assert shadow.read_bits(0x0900_0000, 2) == 0b11

    def test_fill_spans_page_boundary(self):
        # 4096 elements per page x 4 app bytes -> a page covers 16 KiB.
        shadow = OneLevelShadowMap(app_bytes_per_element=4, element_size=1)
        page_app_span = 4096 * 4
        start = page_app_span - 8
        shadow.fill_bits(start, 16, 2, 0b01)
        assert all(shadow.read_bits(start + i, 2) == 0b01 for i in range(16))
        assert shadow.read_bits(start - 1, 2) == 0
        assert shadow.read_bits(start + 16, 2) == 0
        assert shadow.metadata_bytes() == 4
