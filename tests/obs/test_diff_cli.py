"""The ``python -m repro.obs`` CLI: diff, validate, prom."""

import json

import pytest

from repro.obs.__main__ import main
from repro.obs.diff import diff_files, diff_snapshots
from repro.obs.pipeline import (
    REQUIRED_ACCELERATOR_COUNTERS,
    REQUIRED_REPLAY_COUNTERS,
    SNAPSHOT_KIND,
    SNAPSHOT_VERSION,
)


def _snapshot(counters, gauges=None):
    document = {
        "version": SNAPSHOT_VERSION,
        "kind": SNAPSHOT_KIND,
        "meta": {},
        "counters": dict(counters),
        "gauges": dict(gauges or {}),
        "histograms": {},
    }
    for name in REQUIRED_ACCELERATOR_COUNTERS + REQUIRED_REPLAY_COUNTERS:
        document["counters"].setdefault(name, 0)
    return document


def _write(path, document):
    path.write_text(json.dumps(document, indent=2, sort_keys=True))
    return str(path)


class TestDiffSnapshots:
    def test_hit_rate_attribution(self):
        a = _snapshot({"mtlb.lookups": 1000, "mtlb.hits": 950})
        b = _snapshot({"mtlb.lookups": 1000, "mtlb.hits": 860})
        lines = diff_snapshots(a, b)
        assert any("M-TLB hit rate down 9.0pts" in line for line in lines)

    def test_counter_delta_with_percentage(self):
        a = _snapshot({"dispatch.records_total": 100})
        b = _snapshot({"dispatch.records_total": 150})
        lines = diff_snapshots(a, b)
        assert "dispatch.records_total: 100 -> 150 (+50.0%)" in lines

    def test_gauge_change(self):
        a = _snapshot({}, gauges={"if.resident_entries": 3})
        b = _snapshot({}, gauges={"if.resident_entries": 5})
        assert "if.resident_entries (gauge): 3 -> 5" in diff_snapshots(a, b)

    def test_identical_snapshots(self):
        a = _snapshot({"x": 1})
        assert diff_snapshots(a, a) == ["no metric differences"]


class TestDiffBench:
    def test_stage_deltas_and_sidecar_attribution(self, tmp_path):
        bench_a = {"stages": {"replay_MemCheck": 100_000}, "units": {}}
        bench_b = {"stages": {"replay_MemCheck": 80_000}, "units": {}}
        path_a = _write(tmp_path / "a.json", bench_a)
        path_b = _write(tmp_path / "b.json", bench_b)
        _write(tmp_path / "a.metrics.json",
               _snapshot({"mtlb.lookups": 100, "mtlb.hits": 90}))
        _write(tmp_path / "b.metrics.json",
               _snapshot({"mtlb.lookups": 100, "mtlb.hits": 50}))
        lines = diff_files(path_a, path_b)
        assert any("replay_MemCheck: 100,000 -> 80,000 records/s (-20.0%)" in line
                   for line in lines)
        assert any("M-TLB hit rate down 40.0pts" in line for line in lines)

    def test_without_sidecars(self, tmp_path):
        path_a = _write(tmp_path / "a.json", {"stages": {"s": 10}, "units": {}})
        path_b = _write(tmp_path / "b.json", {"stages": {"s": 20}, "units": {}})
        lines = diff_files(path_a, path_b)
        assert any("no metrics sidecars" in line for line in lines)


class TestCli:
    def test_diff_prints_lines(self, tmp_path, capsys):
        path_a = _write(tmp_path / "a.json", _snapshot({"if.lookups": 10, "if.hits": 9}))
        path_b = _write(tmp_path / "b.json", _snapshot({"if.lookups": 10, "if.hits": 5}))
        assert main(["diff", path_a, path_b]) == 0
        out = capsys.readouterr().out
        assert "IF hit rate down 40.0pts" in out

    def test_validate_ok(self, tmp_path, capsys):
        path = _write(tmp_path / "snap.json", _snapshot({}))
        assert main(["validate", path]) == 0
        assert "ok" in capsys.readouterr().out

    def test_validate_rejects_missing_counters(self, tmp_path, capsys):
        document = _snapshot({})
        del document["counters"]["mtlb.hits"]
        path = _write(tmp_path / "bad.json", document)
        assert main(["validate", path]) == 1
        assert "mtlb.hits" in capsys.readouterr().err

    def test_prom_renders(self, tmp_path, capsys):
        path = _write(tmp_path / "snap.json", _snapshot({"it.events_seen": 7}))
        assert main(["prom", path]) == 0
        out = capsys.readouterr().out
        assert "repro_it_events_seen 7" in out

    def test_prom_custom_prefix(self, tmp_path, capsys):
        path = _write(tmp_path / "snap.json", _snapshot({"it.events_seen": 7}))
        assert main(["prom", path, "--prefix", "lba_"]) == 0
        assert "lba_it_events_seen 7" in capsys.readouterr().out
