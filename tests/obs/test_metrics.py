"""Metrics primitives: bucketing, registry semantics, deterministic export."""

import json

import pytest

from repro.obs import MetricsRegistry, prometheus_text
from repro.obs.metrics import Counter, Gauge, Histogram


class TestCounter:
    def test_accumulates(self):
        counter = Counter("x")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        counter = Counter("x")
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_set_overwrites(self):
        gauge = Gauge("x")
        gauge.set(7)
        gauge.set(3)
        assert gauge.value == 3


class TestHistogram:
    def test_bucketing_le_semantics(self):
        """A value equal to a bucket edge lands in that edge's bucket (``le``)."""
        hist = Histogram("h", (1, 2, 4))
        for value in (1, 2, 3, 4, 5):
            hist.observe(value)
        # 1 -> bucket le=1; 2 -> le=2; 3,4 -> le=4; 5 -> +Inf overflow.
        assert hist.counts == [1, 1, 2, 1]
        assert hist.count == 5
        assert hist.total == 15

    def test_below_first_edge(self):
        hist = Histogram("h", (10, 100))
        hist.observe(0)
        assert hist.counts == [1, 0, 0]

    def test_as_dict_shape(self):
        hist = Histogram("h", (1, 2))
        hist.observe(2)
        assert hist.as_dict() == {
            "bounds": [1, 2],
            "counts": [0, 1, 0],
            "sum": 2,
            "count": 1,
        }

    def test_rejects_empty_and_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", ())
        with pytest.raises(ValueError):
            Histogram("h", (2, 1))
        with pytest.raises(ValueError):
            Histogram("h", (1, 1, 2))


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h", (1, 2)) is registry.histogram("h")

    def test_cross_type_name_collision(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(ValueError):
            registry.gauge("name")
        with pytest.raises(ValueError):
            registry.histogram("name", (1,))

    def test_histogram_bounds_mismatch(self):
        registry = MetricsRegistry()
        registry.histogram("h", (1, 2))
        with pytest.raises(ValueError):
            registry.histogram("h", (1, 2, 3))

    def test_snapshot_deterministic_across_insertion_order(self):
        """Same metrics, different creation order -> byte-identical JSON."""

        def populate(registry, names):
            for name in names:
                registry.counter(name).inc(3)
            registry.gauge("g").set(2)
            registry.histogram("h", (1, 4)).observe(2)
            return registry

        first = populate(MetricsRegistry(), ["b", "a", "c"])
        second = populate(MetricsRegistry(), ["c", "a", "b"])
        dump = lambda registry: json.dumps(registry.snapshot(), sort_keys=True)
        assert dump(first) == dump(second)

    def test_snapshot_repeatable(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(1)
        assert registry.snapshot() == registry.snapshot()


class TestPrometheus:
    def test_rendering(self):
        registry = MetricsRegistry()
        registry.counter("it.events_seen").inc(10)
        registry.gauge("mtlb.resident_entries").set(4)
        hist = registry.histogram("dispatch.run_length", (1, 2))
        for value in (1, 2, 3):
            hist.observe(value)
        text = registry.to_prometheus()
        lines = text.splitlines()
        assert "# TYPE repro_it_events_seen counter" in lines
        assert "repro_it_events_seen 10" in lines
        assert "# TYPE repro_mtlb_resident_entries gauge" in lines
        assert "repro_mtlb_resident_entries 4" in lines
        # Cumulative le buckets: 1 value <=1, 2 values <=2, 3 total.
        assert 'repro_dispatch_run_length_bucket{le="1"} 1' in lines
        assert 'repro_dispatch_run_length_bucket{le="2"} 2' in lines
        assert 'repro_dispatch_run_length_bucket{le="+Inf"} 3' in lines
        assert "repro_dispatch_run_length_sum 6" in lines
        assert "repro_dispatch_run_length_count 3" in lines
        assert text.endswith("\n")

    def test_renders_from_stored_snapshot(self):
        """The exposition works from a plain snapshot dict (no live registry)."""
        registry = MetricsRegistry()
        registry.counter("a.b").inc(2)
        snapshot = registry.snapshot()
        assert prometheus_text(snapshot) == registry.to_prometheus()

    def test_custom_prefix(self):
        registry = MetricsRegistry()
        registry.counter("x").inc(1)
        assert "lba_x 1" in registry.to_prometheus(prefix="lba_")
