"""Disabled-telemetry overhead guard for the columnar hot path.

The telemetry layer's contract is a strict no-op fast path: with ``OBS``
disabled (the default), ``ColumnarEngine.consume_columns`` pays one
attribute load and one branch per *chunk* over a build without the
telemetry layer.  The guard measures the public entry point against the
internal run loop (``_begin_columns`` + ``_consume_runs``), which is
exactly the registry-absent code path, and bounds the ratio at 2%.
"""

import time

import pytest

from repro.core.events import AnnotationRecord, EventType, InstructionRecord
from repro.lba.columnar import ColumnarEngine
from repro.lifeguards import ALL_LIFEGUARDS
from repro.obs import OBS
from repro.trace.codec import RecordColumns
from repro.trace.replay import build_pipeline

#: Allowed disabled-telemetry slowdown of the public entry point.
OVERHEAD_CEILING = 1.02
#: Timing attempts before the guard gives up (scheduler-noise retries).
ATTEMPTS = 5
REPEATS = 5


def _records(count=20_000):
    records = []
    heap = 0x0900_0000
    for i in range(count):
        if i % 512 == 0:
            records.append(AnnotationRecord(
                event_type=EventType.MALLOC, address=heap + (i // 512) * 4096,
                size=2048, pc=0x0804_7F00, thread_id=0,
            ))
        slot = heap + (i % 512) * 4
        if i % 3:
            records.append(InstructionRecord(
                pc=0x0804_8000 + 4 * (i % 64), event_type=EventType.MEM_TO_REG,
                dest_reg=i % 8, src_addr=slot, size=4, is_load=True,
                base_reg=(i + 1) % 8,
            ))
        else:
            records.append(InstructionRecord(
                pc=0x0804_8000 + 4 * (i % 64), event_type=EventType.REG_TO_MEM,
                src_reg=i % 8, dest_addr=slot, size=4, is_store=True,
                base_reg=(i + 2) % 8,
            ))
    return records


def _engine():
    lifeguard = ALL_LIFEGUARDS["TaintCheck"]()
    _, dispatcher = build_pipeline(lifeguard)
    return ColumnarEngine(dispatcher)


def _time_best(columns, run, repeats=REPEATS):
    best = None
    for _ in range(repeats):
        engine = _engine()
        start = time.perf_counter()
        run(engine, columns)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def _public(engine, columns):
    engine.consume_columns(columns)


def _registry_absent(engine, columns):
    # The internal run loop, entered past the OBS branch: this is the
    # code a build without the telemetry layer would run.
    engine._begin_columns(columns)
    engine._consume_runs(columns)


def test_disabled_overhead_within_two_percent():
    assert not OBS.enabled, "telemetry must be disabled for the overhead guard"
    columns = RecordColumns.from_records(_records())
    best_ratio = None
    for _attempt in range(ATTEMPTS):
        baseline = _time_best(columns, _registry_absent)
        public = _time_best(columns, _public)
        ratio = public / baseline
        best_ratio = ratio if best_ratio is None else min(best_ratio, ratio)
        if best_ratio <= OVERHEAD_CEILING:
            break
    assert best_ratio <= OVERHEAD_CEILING, (
        f"disabled-telemetry consume_columns is {best_ratio:.3f}x the "
        f"registry-absent run loop (ceiling {OVERHEAD_CEILING}x)"
    )


@pytest.mark.benchmark(group="columnar-disabled")
def test_benchmark_disabled_columnar_smoke(benchmark):
    """pytest-benchmark smoke: disabled-path columnar dispatch throughput."""
    columns = RecordColumns.from_records(_records(4_000))

    def run():
        engine = _engine()
        engine.consume_columns(columns)
        return engine.dispatcher.stats.records_consumed

    records = benchmark(run)
    assert records == len(columns)
    assert not OBS.enabled
