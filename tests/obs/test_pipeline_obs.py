"""End-to-end telemetry: enabled replay snapshots, spans, bit-identity."""

import time

import pytest

from repro.obs import (
    OBS,
    MetricsRegistry,
    REQUIRED_ACCELERATOR_COUNTERS,
    REQUIRED_REPLAY_COUNTERS,
    REQUIRED_SERVICE_COUNTERS,
    collect_service,
    observed,
    prometheus_text,
    snapshot_document,
    validate_snapshot,
)
from repro.core.events import AnnotationRecord, EventType, InstructionRecord
from repro.obs.pipeline import PipelineRecorder
from repro.trace.replay import ParallelReplay, replay_trace
from repro.trace.tracefile import TraceWriter


def _synthetic_records(count):
    """A loop-like stream mixing allocations, loads and stores."""
    records = []
    heap = 0x0900_0000
    for i in range(count):
        if i % 512 == 0:
            records.append(AnnotationRecord(
                event_type=EventType.MALLOC, address=heap + (i // 512) * 4096,
                size=2048, pc=0x0804_7F00, thread_id=0,
            ))
        slot = heap + (i % 512) * 4
        if i % 3:
            records.append(InstructionRecord(
                pc=0x0804_8000 + 4 * (i % 64), event_type=EventType.MEM_TO_REG,
                dest_reg=i % 8, src_addr=slot, size=4, is_load=True,
                base_reg=(i + 1) % 8,
            ))
        else:
            records.append(InstructionRecord(
                pc=0x0804_8000 + 4 * (i % 64), event_type=EventType.REG_TO_MEM,
                src_reg=i % 8, dest_addr=slot, size=4, is_store=True,
                base_reg=(i + 2) % 8,
            ))
    return records


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    """A small multi-chunk synthetic trace."""
    path = str(tmp_path_factory.mktemp("obs") / "synthetic.lbatrace")
    with TraceWriter(path, chunk_bytes=16 * 1024) as writer:
        writer.extend(_synthetic_records(4_000))
    return path


def test_disabled_by_default():
    assert OBS.enabled is False
    assert OBS.registry is None and OBS.tracer is None and OBS.recorder is None


def test_observed_scope_restores_previous_state():
    with observed() as obs:
        assert obs.enabled and obs.registry is not None
    assert OBS.enabled is False
    assert OBS.registry is None


def test_enabled_replay_produces_valid_snapshot(trace_path):
    with observed() as obs:
        result = replay_trace(trace_path, "MemCheck")
        document = snapshot_document(obs.registry, meta={"tool": "test"})
    assert validate_snapshot(document) == []
    counters = document["counters"]
    for name in REQUIRED_ACCELERATOR_COUNTERS:
        assert name in counters, name
    # The accelerator stack actually saw traffic on this workload.
    assert counters["it.events_seen"] > 0
    assert counters["if.lookups"] > 0
    assert counters["mtlb.lookups"] > 0
    assert counters["mtlb.hits"] + counters["mtlb.misses"] == counters["mtlb.lookups"]
    assert counters["if.hits"] + counters["if.misses"] == counters["if.lookups"]
    # Recorder-side counters agree with the replay result.
    assert counters["replay.records"] == result.records
    assert counters["replay.chunks"] == result.chunks
    assert counters["codec.chunks_read"] == result.chunks
    assert counters["dispatch.records_total"] == result.records
    assert counters["dispatch.records_consumed"] == result.records
    # The snapshot renders straight to Prometheus text.
    text = prometheus_text(document)
    assert "repro_it_events_seen" in text


def test_stage_spans_cover_replay_wall_time(trace_path):
    """Top-level stage spans must account for ~all of the replay wall time."""
    with observed() as obs:
        start = time.perf_counter()
        replay_trace(trace_path, "MemCheck")
        wall = time.perf_counter() - start
        covered = obs.tracer.total_for(
            "replay.setup", "replay.decode", "replay.dispatch", "replay.finish"
        )
        trace = obs.tracer.to_chrome_trace()
    assert covered >= 0.9 * wall
    assert covered <= wall * 1.01  # spans are sections of the same wall clock
    assert trace["traceEvents"], "replay produced no trace events"


def test_telemetry_does_not_perturb_replay(trace_path):
    """Bit-identity: enabled telemetry observes, never changes, the pipeline."""
    baseline = replay_trace(trace_path, "MemCheck")
    with observed():
        traced = replay_trace(trace_path, "MemCheck")
    assert traced.records == baseline.records
    assert traced.chunks == baseline.chunks
    assert traced.dispatch.diff(baseline.dispatch) == {}
    assert traced.accelerator == baseline.accelerator
    assert traced.reports == baseline.reports


def test_snapshot_is_deterministic_across_runs(trace_path):
    def snap():
        with observed() as obs:
            replay_trace(trace_path, "TaintCheck")
            return snapshot_document(obs.registry)

    assert snap() == snap()


def test_worker_timings_collected_when_enabled(trace_path):
    with observed():
        result = ParallelReplay(trace_path, "MemCheck", workers=2).run_sequential()
    assert result.worker_timings, "enabled telemetry should collect worker timings"
    for timing in result.worker_timings:
        for key in ("setup_s", "decode_s", "dispatch_s", "serialize_s",
                    "ipc_s", "worker_wall_s", "chunks", "records", "pid"):
            assert key in timing, key
    assert sum(t["records"] for t in result.worker_timings) == result.records


def test_sharded_replay_collects_accelerator_counters(trace_path):
    """Shard workers ship counter detail back; the merge folds it in."""
    with observed() as obs:
        result = ParallelReplay(trace_path, "MemCheck", workers=2).run_sequential()
        document = snapshot_document(obs.registry)
    assert validate_snapshot(document) == []
    counters = document["counters"]
    assert counters["it.events_seen"] > 0
    assert counters["if.lookups"] > 0
    assert counters["mtlb.lookups"] > 0
    assert counters["replay.records"] == result.records
    assert counters["dispatch.records_consumed"] == result.records
    assert document["gauges"]["replay.workers"] == 1


def test_sharded_and_sequential_accelerator_counters_agree(trace_path):
    """One worker's sharded replay sees exactly the sequential counter totals."""

    def counters(run):
        with observed() as obs:
            run()
            return dict(snapshot_document(obs.registry)["counters"])

    sequential = counters(lambda: replay_trace(trace_path, "MemCheck"))
    sharded = counters(
        lambda: ParallelReplay(trace_path, "MemCheck", workers=1).run_sequential()
    )
    for name in ("it.events_seen", "it.events_discarded", "if.lookups", "if.hits",
                 "if.evictions", "mtlb.lookups", "mtlb.hits", "mtlb.misses",
                 "mapper.translations", "replay.records"):
        assert sharded[name] == sequential[name], name


def test_worker_timings_absent_by_default(trace_path):
    result = ParallelReplay(trace_path, "MemCheck", workers=2).run_sequential()
    assert result.worker_timings == []


def test_recorder_flush_resets_accumulators():
    recorder = PipelineRecorder()
    recorder.record_run(0, 5, False)
    recorder.record_run(-1, 1, True)
    recorder.record_chunk_read(100, 400)
    registry = MetricsRegistry()
    recorder.flush_to(registry)
    first = registry.snapshot()
    assert first["counters"]["dispatch.records_total"] == 6
    assert first["counters"]["dispatch.fallback_records"] == 1
    assert first["counters"]["codec.chunks_read"] == 1
    # A second flush contributes nothing: the accumulators were reset.
    recorder.flush_to(registry)
    assert registry.snapshot() == first


def test_validate_snapshot_flags_problems():
    registry = MetricsRegistry()
    document = snapshot_document(registry)
    problems = validate_snapshot(document)
    # An empty registry is missing every required accelerator and replay
    # fault-tolerance counter.
    assert len(problems) == (
        len(REQUIRED_ACCELERATOR_COUNTERS) + len(REQUIRED_REPLAY_COUNTERS)
    )
    assert any("it.events_seen" in problem for problem in problems)

    assert validate_snapshot({"kind": "nope"}) != []

    for name in REQUIRED_ACCELERATOR_COUNTERS + REQUIRED_REPLAY_COUNTERS:
        document["counters"][name] = 0
    assert validate_snapshot(document) == []

    document["histograms"]["h"] = {"bounds": [1], "counts": [1], "sum": 0, "count": 1}
    assert any("length mismatch" in problem for problem in validate_snapshot(document))


# ------------------------------------------------------------ service counters


def _full_counters(document):
    for name in REQUIRED_ACCELERATOR_COUNTERS + REQUIRED_REPLAY_COUNTERS:
        document["counters"].setdefault(name, 0)
    return document


def test_collect_service_emits_deltas_against_watermark():
    registry = MetricsRegistry()
    watermark = {}
    counters = {"sessions_settled": 3, "bytes_received": 100}
    collect_service(registry, counters, last=watermark)
    snapshot = registry.snapshot()
    assert snapshot["counters"]["service.sessions_settled"] == 3
    assert snapshot["counters"]["service.bytes_received"] == 100

    # Second flush with partially-advanced counters: only the delta lands.
    counters = {"sessions_settled": 5, "bytes_received": 100}
    collect_service(registry, counters, last=watermark)
    snapshot = registry.snapshot()
    assert snapshot["counters"]["service.sessions_settled"] == 5
    assert snapshot["counters"]["service.bytes_received"] == 100
    assert watermark == {"sessions_settled": 5, "bytes_received": 100}


def test_collect_service_zero_fills_required_names():
    # Even before the first session arrives, a service snapshot must carry
    # every required counter so probes can rely on the schema.
    registry = MetricsRegistry()
    collect_service(registry, {})
    names = set(registry.snapshot()["counters"])
    assert set(REQUIRED_SERVICE_COUNTERS) <= names


def test_validate_snapshot_gates_service_counters_on_source():
    registry = MetricsRegistry()
    plain = _full_counters(snapshot_document(registry, meta={"source": "replay"}))
    assert validate_snapshot(plain) == []

    service = _full_counters(snapshot_document(registry, meta={"source": "service"}))
    problems = validate_snapshot(service)
    assert len(problems) == len(REQUIRED_SERVICE_COUNTERS)
    assert all("service counter" in problem for problem in problems)

    collect_service(registry, {})
    fixed = _full_counters(snapshot_document(registry, meta={"source": "service"}))
    assert validate_snapshot(fixed) == []
