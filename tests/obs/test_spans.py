"""Span tracer: nesting, totals, Chrome trace and folded-stack export."""

import json

from repro.obs import SpanTracer


def test_span_context_manager_records_duration():
    tracer = SpanTracer()
    with tracer.span("replay.setup"):
        pass
    assert len(tracer.spans) == 1
    name, category, _start, duration = tracer.spans[0]
    assert name == "replay.setup"
    assert category == "stage"
    assert duration >= 0


def test_nested_spans_get_stack_qualified_names():
    tracer = SpanTracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
        tracer.add("leaf", "codec", 0.0, 0.5)
    names = [span[0] for span in tracer.spans]
    # Inner spans complete (and append) before the outer scope exits.
    assert names == ["outer;inner", "outer;leaf", "outer"]


def test_add_outside_scope_is_unqualified():
    tracer = SpanTracer()
    tracer.add("codec.read", "codec", 1.0, 0.25)
    assert tracer.spans == [("codec.read", "codec", 1.0, 0.25)]


def test_totals_and_total_for():
    tracer = SpanTracer()
    tracer.add("replay.decode", "stage", 0.0, 0.5)
    tracer.add("replay.decode", "stage", 1.0, 0.25)
    tracer.add("replay.dispatch", "stage", 2.0, 1.0)
    assert tracer.totals() == {"replay.decode": 0.75, "replay.dispatch": 1.0}
    assert tracer.total_for("replay.decode") == 0.75
    assert tracer.total_for("replay.decode", "replay.dispatch") == 1.75


def test_total_for_matches_leaf_of_nested_name():
    tracer = SpanTracer()
    with tracer.span("replay.dispatch"):
        tracer.add("codec.read", "codec", 0.0, 0.5)
    assert tracer.total_for("codec.read") == 0.5


def test_chrome_trace_format():
    tracer = SpanTracer()
    tracer.add("a", "stage", 10.0, 0.5)
    with tracer.span("b"):
        tracer.add("c", "codec", 10.25, 0.001)
    document = tracer.to_chrome_trace()
    assert document["displayTimeUnit"] == "ms"
    events = document["traceEvents"]
    assert len(events) == 3
    for event in events:
        assert event["ph"] == "X"
        assert event["tid"] == 1
        assert event["ts"] >= 0
        assert event["dur"] >= 0
    # Names are leaf names (Perfetto nests by timestamps, not ;-stacks).
    assert {event["name"] for event in events} == {"a", "b", "c"}
    # The earliest span anchors the timeline at ts=0.
    assert min(event["ts"] for event in events) == 0
    # ts is microseconds relative to the origin.
    by_name = {event["name"]: event for event in events}
    assert by_name["c"]["ts"] == 250000.0
    assert by_name["a"]["dur"] == 500000.0
    # The document is plain JSON.
    json.dumps(document)


def test_folded_stack_output():
    tracer = SpanTracer()
    tracer.add("replay.decode", "stage", 0.0, 0.5)
    tracer.add("replay.decode", "stage", 1.0, 0.5)
    with tracer.span("replay.dispatch"):
        tracer.add("codec.read", "codec", 0.0, 0.25)
    text = tracer.to_folded()
    lines = text.splitlines()
    assert "stage;replay.decode 1000000" in lines
    assert any(line.startswith("codec;replay.dispatch;codec.read ") for line in lines)
    assert lines == sorted(lines)
    assert text.endswith("\n")
