"""End-to-end gateway tests: upload, backpressure, shedding, drain, recovery.

Each test runs a real :class:`MonitoringGateway` on an ephemeral port
inside ``asyncio.run`` and talks to it through :class:`GatewayClient`
over a live socket -- the same wire path production clients use.  The
replay-bearing tests assert the service's core determinism contract: the
``result`` section of a gateway report is bit-identical to an offline
sharded-sequential replay of the same trace with the same worker count.
"""

import asyncio
import json
import shutil

import pytest

from repro.faultinject.chaos import CHAOS_LIFEGUARD, build_chaos_trace
from repro.faultinject.corrupt import flip_chunk_bytes
from repro.obs.pipeline import validate_snapshot
from repro.service.client import GatewayClient, GatewayError, upload_trace
from repro.service.gateway import GatewayConfig, MonitoringGateway, report_document
from repro.service.session import SessionState
from repro.service.store import SessionStore
from repro.trace.replay import ParallelReplay
from repro.trace.supervisor import SupervisorPolicy
from repro.trace.tracefile import TraceReader

WORKERS = 2
POLICY = SupervisorPolicy(
    timeout_seconds=60.0, backoff_seconds=0.01, start_method="forkserver"
)


@pytest.fixture(scope="module")
def trace(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("traces") / "workload.lbatrace")
    build_chaos_trace(path, seed=77)
    return path


@pytest.fixture(scope="module")
def baseline(trace):
    """Offline sharded-sequential replay: the bit-identity reference."""
    result = ParallelReplay(trace, CHAOS_LIFEGUARD, workers=WORKERS).run_sequential()
    return report_document(result)["result"]


def _config(tmp_path, **overrides):
    defaults = dict(
        store_dir=str(tmp_path / "store"),
        lifeguard=CHAOS_LIFEGUARD,
        pool_size=2,
        workers_per_session=WORKERS,
        policy=POLICY,
        drain_grace=60.0,
        session_idle_timeout=60.0,
    )
    defaults.update(overrides)
    return GatewayConfig(**defaults)


def _run(config, body, timeout=180.0):
    """Start a gateway, run ``body(gateway)``, always drain cleanly."""

    async def main():
        gateway = MonitoringGateway(config)
        await gateway.start()
        try:
            return await asyncio.wait_for(body(gateway), timeout=timeout)
        finally:
            await gateway.drain("test teardown")

    return asyncio.run(main())


class TestUploadAndReplay:
    def test_upload_settles_bit_identical_to_offline_replay(
        self, tmp_path, trace, baseline
    ):
        async def body(gateway):
            reply = await upload_trace(
                "127.0.0.1", gateway.port, trace, session_id="tenant-a",
                chunk_bytes=256,
            )
            assert reply["ok"] and reply["state"] == SessionState.SETTLED.value
            assert reply["report"]["result"] == baseline
            assert gateway.counters["sessions_settled"] == 1
            assert gateway.counters["chunks_received"] > 1
            # The report is durable, not just in the reply.
            stored = SessionStore(gateway.config.store_dir).load_report("tenant-a")
            assert stored["result"] == baseline

        _run(_config(tmp_path), body)

    def test_concurrent_tenants_all_settle_identically(
        self, tmp_path, trace, baseline
    ):
        async def body(gateway):
            replies = await asyncio.gather(*(
                upload_trace(
                    "127.0.0.1", gateway.port, trace,
                    session_id=f"tenant-{n}", chunk_bytes=200 + 64 * n,
                )
                for n in range(3)
            ))
            for reply in replies:
                assert reply["ok"]
                assert reply["report"]["result"] == baseline

        _run(_config(tmp_path), body)


class TestBackpressure:
    def test_queue_high_water_bounded_by_depth(self, tmp_path, trace):
        # A deliberately slow consumer: the client can pipeline chunks,
        # but the bounded queue must cap the buffered backlog -- excess
        # waits in the socket, not in gateway memory.
        depth = 3
        config = _config(
            tmp_path, ingest_queue_depth=depth, ingest_delay=0.01,
        )

        async def body(gateway):
            reply = await upload_trace(
                "127.0.0.1", gateway.port, trace, session_id="slow",
                chunk_bytes=64,
            )
            assert reply["ok"]
            assert gateway.counters["chunks_received"] >= 20
            assert 0 < gateway._queue_high_water <= depth

        _run(config, body)


class TestAdmissionControl:
    def test_shed_at_session_limit_with_503(self, tmp_path):
        config = _config(tmp_path, max_sessions=1)

        async def body(gateway):
            async with GatewayClient("127.0.0.1", gateway.port) as a:
                await a.begin(session_id="tenant-a")
                async with GatewayClient("127.0.0.1", gateway.port) as b:
                    assert (await b.ready())["ready"] is False
                    with pytest.raises(GatewayError) as exc:
                        await b.begin(session_id="tenant-b")
                    assert exc.value.code == 503
                    assert "session limit" in str(exc.value)
                    # Releasing the slot re-opens admission.
                    await b.cancel("tenant-a")
                    assert (await b.ready())["ready"] is True
                    await b.begin(session_id="tenant-b")
            assert gateway.counters["sessions_shed"] == 1
            assert gateway.counters["sessions_cancelled"] == 1

        _run(config, body)

    def test_draining_gateway_sheds_new_sessions(self, tmp_path):
        async def body(gateway):
            async with GatewayClient("127.0.0.1", gateway.port) as client:
                await client.drain()
                assert (await client.ready())["reason"] == "draining"
                with pytest.raises(GatewayError) as exc:
                    await client.begin(session_id="late")
                assert exc.value.code == 503
            await asyncio.wait_for(gateway.serve_until_drained(), timeout=30)

        _run(_config(tmp_path), body)


class TestQuarantine:
    @pytest.fixture
    def damaged(self, trace, tmp_path):
        path = str(tmp_path / "damaged.lbatrace")
        shutil.copyfile(trace, path)
        with TraceReader(path) as reader:
            victim = reader.num_chunks // 2
        flip_chunk_bytes(path, victim, seed=5)
        return path, victim

    def test_strict_commit_fails_naming_exact_chunks(self, tmp_path, damaged):
        path, victim = damaged

        async def body(gateway):
            with pytest.raises(GatewayError) as exc:
                await upload_trace(
                    "127.0.0.1", gateway.port, path, session_id="dirty",
                    quarantine="strict", chunk_bytes=256,
                )
            assert f"damaged chunks [{victim}]" in str(exc.value)
            assert "strict quarantine" in str(exc.value)
            assert gateway.counters["sessions_quarantined"] == 1
            assert gateway.counters["sessions_failed"] == 1
            assert gateway.counters["replays_completed"] == 0

        _run(_config(tmp_path), body)

    def test_degrade_replays_around_damage_with_accounting(
        self, tmp_path, trace, damaged
    ):
        path, victim = damaged
        with TraceReader(trace) as reader:
            total_records = sum(i.records for i in reader.chunks)
            victim_records = reader.chunks[victim].records

        async def body(gateway):
            reply = await upload_trace(
                "127.0.0.1", gateway.port, path, session_id="dirty",
                quarantine="degrade", chunk_bytes=256,
            )
            assert reply["ok"] and reply["state"] == SessionState.SETTLED.value
            result = reply["report"]["result"]
            assert result["degraded"] is True
            assert [c["chunk"] for c in result["skipped_chunks"]] == [victim]
            assert result["skipped_records"] == victim_records
            assert result["records"] == total_records - victim_records
            assert gateway.counters["sessions_quarantined"] == 1

        _run(_config(tmp_path), body)


class TestResumeAndRecovery:
    def test_interrupted_upload_resumes_at_exact_offset(self, tmp_path, trace, baseline):
        blob = open(trace, "rb").read()
        half = len(blob) // 2

        async def body(gateway):
            async with GatewayClient("127.0.0.1", gateway.port) as first:
                await first.begin(session_id="tenant-a")
                await first.send_chunk("tenant-a", blob[:half])
                # Wait until the byte is durably appended, then vanish
                # without committing (client crash).
                while True:
                    status = await first.status("tenant-a")
                    if status["bytes_received"] >= half:
                        break
                    await asyncio.sleep(0.01)
            async with GatewayClient("127.0.0.1", gateway.port) as second:
                reply = await second.begin(session_id="tenant-a", resume=True)
                assert reply["resume_offset"] == half
                await second.upload_file("tenant-a", trace, offset=half)
                await second.commit("tenant-a")
                reply = await second.report("tenant-a", wait=True)
            assert reply["ok"]
            assert reply["report"]["result"] == baseline

        _run(_config(tmp_path), body)

    def test_restart_recovers_committed_and_partial_sessions(
        self, tmp_path, trace, baseline
    ):
        store_dir = tmp_path / "store"
        store = SessionStore(store_dir)
        blob = open(trace, "rb").read()
        # A crash mid-replay: committed trace, meta says replaying.
        meta = store.create("committed")
        store.append_chunk("committed", blob)
        store.commit_upload("committed")
        meta.state = SessionState.REPLAYING.value
        store.save_meta(meta)
        # A crash mid-upload: half the bytes, meta says accepting.
        meta = store.create("partial")
        store.append_chunk("partial", blob[: len(blob) // 2])
        store.save_meta(meta)

        async def body(gateway):
            # The interrupted replay restarts by itself and settles.
            reply = None
            async with GatewayClient("127.0.0.1", gateway.port) as client:
                reply = await client.report("committed", wait=True)
            assert reply["ok"] and reply["report"]["result"] == baseline
            # The interrupted upload is resumable at its exact offset.
            async with GatewayClient("127.0.0.1", gateway.port) as client:
                resumed = await client.begin(session_id="partial", resume=True)
                assert resumed["resume_offset"] == len(blob) // 2
            assert gateway.counters["sessions_recovered"] == 2

        _run(_config(tmp_path, store_dir=str(store_dir)), body)

    def test_drain_checkpoints_accepting_sessions(self, tmp_path, trace):
        blob = open(trace, "rb").read()

        async def body(gateway):
            async with GatewayClient("127.0.0.1", gateway.port) as client:
                await client.begin(session_id="tenant-a")
                await client.send_chunk("tenant-a", blob[:512])
                while (await client.status("tenant-a"))["bytes_received"] < 512:
                    await asyncio.sleep(0.01)
            await gateway.drain("sigterm test")
            await asyncio.wait_for(gateway.serve_until_drained(), timeout=30)
            machine = gateway.sessions["tenant-a"].machine
            assert machine.checkpointed and not machine.terminal
            # The persisted state is resumable by the next process life.
            meta = SessionStore(gateway.config.store_dir).load_meta("tenant-a")
            assert meta.state == SessionState.ACCEPTING.value
            assert meta.bytes_received == 512

        _run(_config(tmp_path), body)


class TestProbesAndMetrics:
    def test_health_ready_and_validated_snapshot(self, tmp_path, trace):
        async def body(gateway):
            async with GatewayClient("127.0.0.1", gateway.port) as client:
                health = await client.health()
                assert health["status"] == "ok"
                assert (await client.ready())["ready"] is True
                await upload_trace(
                    "127.0.0.1", gateway.port, trace, session_id="tenant-a",
                    chunk_bytes=256,
                )
                snapshot = (await client.metrics())["snapshot"]
            assert validate_snapshot(snapshot) == []
            assert snapshot["meta"]["source"] == "service"
            counters = snapshot["counters"]
            assert counters["service.sessions_settled"] == 1
            assert counters["service.bytes_received"] > 0
            # Replay pipeline counters are folded into the same snapshot.
            assert counters["replay.records"] > 0
            assert counters["dispatch.records_consumed"] > 0

        _run(_config(tmp_path), body)

    def test_idle_sessions_are_reaped(self, tmp_path):
        config = _config(tmp_path, session_idle_timeout=0.2, reap_interval=0.05)

        async def body(gateway):
            async with GatewayClient("127.0.0.1", gateway.port) as client:
                await client.begin(session_id="ghost")
                session = gateway.sessions["ghost"]
                await asyncio.wait_for(session.done.wait(), timeout=10)
                status = await client.status("ghost")
            assert status["state"] == SessionState.FAILED.value
            assert "idle" in status["reason"]
            assert gateway.counters["sessions_timed_out"] == 1

        _run(config, body)

    def test_status_of_unknown_session(self, tmp_path):
        async def body(gateway):
            async with GatewayClient("127.0.0.1", gateway.port) as client:
                reply = await client.status("nope")
            assert reply["ok"] is False
            assert reply["error"] == "unknown session"

        _run(_config(tmp_path), body)
