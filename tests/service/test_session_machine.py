"""Property tests for the gateway session state machine.

Hypothesis drives :class:`SessionMachine` with arbitrary interleavings of
upload, cancel, worker-failure and shutdown events and checks the two
invariants the whole service leans on:

* every interleaving ends in **exactly one** disposition -- open, one
  terminal state, or checkpointed -- and once closed every further event
  is a rejected no-op;
* the release hooks (standing in for the bounded ingest queue and store
  handles) fire **exactly once**, exactly when the machine closes, even
  when a hook itself raises.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.session import (
    SESSION_EVENTS,
    TERMINAL_STATES,
    SessionMachine,
    SessionState,
    replay_history,
)

events = st.lists(st.sampled_from(SESSION_EVENTS), max_size=30)

#: The only legal transition edges; anything else is a machine bug.
LEGAL_EDGES = {
    (SessionState.ACCEPTING, SessionState.REPLAYING),
    (SessionState.REPLAYING, SessionState.REPORTING),
    (SessionState.REPORTING, SessionState.SETTLED),
    (SessionState.ACCEPTING, SessionState.FAILED),
    (SessionState.REPLAYING, SessionState.FAILED),
    (SessionState.REPORTING, SessionState.FAILED),
}


def _machine(hook_calls):
    machine = SessionMachine("s-prop")
    machine.add_release_hook(lambda: hook_calls.append(machine.state))
    return machine


class TestInterleavings:
    @given(history=events)
    @settings(max_examples=300, deadline=None)
    def test_exactly_one_disposition_and_one_release(self, history):
        hook_calls = []
        machine = _machine(hook_calls)
        trail = [machine.state]
        for event in history:
            machine.apply(event)
            trail.append(machine.state)

        # Transitions only ever walk legal edges, and at most one step
        # ever enters a terminal state.
        steps = [(a, b) for a, b in zip(trail, trail[1:]) if a is not b]
        assert all(edge in LEGAL_EDGES for edge in steps)
        assert sum(1 for _, b in steps if b in TERMINAL_STATES) <= 1

        # Exactly one disposition, and release fires iff the machine closed.
        assert machine.closed == (machine.terminal or machine.checkpointed)
        assert machine.released == machine.closed
        assert len(hook_calls) == (1 if machine.closed else 0)
        assert machine.release_errors == []

    @given(history=events)
    @settings(max_examples=300, deadline=None)
    def test_closed_machines_reject_everything(self, history):
        machine = replay_history(SessionMachine("s-prop"), tuple(history))
        if not machine.closed:
            machine.apply("fail", "forced terminal")
        frozen = (machine.state, machine.checkpointed, machine.worker_failures)
        for event in SESSION_EVENTS:
            assert machine.apply(event) is False
        assert (machine.state, machine.checkpointed, machine.worker_failures) == frozen

    @given(history=events)
    @settings(max_examples=300, deadline=None)
    def test_release_is_exactly_once_even_when_forced_closed(self, history):
        hook_calls = []
        machine = _machine(hook_calls)
        replay_history(machine, tuple(history))
        machine.apply("shutdown")
        machine.apply("fail")
        assert len(hook_calls) == 1

    @given(history=events)
    @settings(max_examples=200, deadline=None)
    def test_worker_failures_only_counted_while_replaying(self, history):
        machine = SessionMachine("s-prop")
        expected = 0
        for event in history:
            if (
                event == "worker_fail"
                and not machine.closed
                and machine.state is SessionState.REPLAYING
            ):
                expected += 1
            machine.apply(event)
        assert machine.worker_failures == expected


class TestMachineEdges:
    def test_unknown_event_is_a_programming_error(self):
        with pytest.raises(ValueError, match="unknown session event"):
            SessionMachine("s-1").apply("launch_missiles")

    def test_invalid_events_are_counted_not_raised(self):
        machine = SessionMachine("s-1")
        assert machine.apply("replay_ok") is False
        assert machine.apply("report_ok") is False
        assert machine.rejected_events == 2
        assert machine.state is SessionState.ACCEPTING

    def test_happy_path(self):
        machine = SessionMachine("s-1")
        for event in ("chunk", "chunk", "commit", "replay_ok", "report_ok"):
            assert machine.apply(event) is True
        assert machine.state is SessionState.SETTLED

    def test_hook_added_after_close_fires_immediately(self):
        machine = SessionMachine("s-1")
        machine.apply("cancel")
        fired = []
        machine.add_release_hook(lambda: fired.append(True))
        assert fired == [True]

    def test_hook_exception_recorded_not_raised(self):
        def boom():
            raise RuntimeError("queue already torn down")

        machine = SessionMachine("s-1", release_hooks=[boom])
        machine.apply("fail", "disk full")
        assert machine.state is SessionState.FAILED
        assert machine.reason == "disk full"
        assert machine.release_errors == ["RuntimeError: queue already torn down"]

    def test_rehydrated_terminal_releases_at_construction(self):
        fired = []
        SessionMachine(
            "s-1",
            state=SessionState.SETTLED,
            release_hooks=[lambda: fired.append(True)],
        )
        assert fired == [True]

    def test_shutdown_checkpoints_without_deciding_outcome(self):
        machine = SessionMachine("s-1")
        machine.apply("commit")
        assert machine.apply("shutdown", "drain") is True
        assert machine.state is SessionState.REPLAYING  # persisted state survives
        assert machine.checkpointed and machine.released
        assert not machine.terminal
