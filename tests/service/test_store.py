"""SessionStore: durable layout, resume offsets, hostile ids, recovery scan."""

import json
import os

import pytest

from repro.service.session import SessionState
from repro.service.store import (
    SessionMeta,
    SessionStore,
    StoreError,
    validate_session_id,
)


@pytest.fixture
def store(tmp_path):
    return SessionStore(tmp_path / "store")


class TestSessionIds:
    def test_accepts_conservative_charset(self):
        assert validate_session_id("s-1.ok_2") == "s-1.ok_2"

    @pytest.mark.parametrize(
        "bad", ["", "../evil", "a/b", "a\\b", "x" * 65, "sp ace", "s\n1"]
    )
    def test_rejects_traversal_and_junk(self, bad, store):
        with pytest.raises(StoreError, match="invalid session id"):
            store.session_dir(bad)


class TestMetaRoundtrip:
    def test_create_and_load(self, store):
        meta = store.create("s-1", client="10.0.0.1:999", quarantine="strict")
        loaded = store.load_meta("s-1")
        assert loaded.session_id == "s-1"
        assert loaded.client == "10.0.0.1:999"
        assert loaded.quarantine == "strict"
        assert loaded.state == SessionState.ACCEPTING.value
        assert loaded.created_at == pytest.approx(meta.created_at)

    def test_duplicate_create_refused(self, store):
        store.create("s-1")
        with pytest.raises(StoreError, match="already exists"):
            store.create("s-1")

    def test_load_missing_session(self, store):
        with pytest.raises(StoreError, match="not found"):
            store.load_meta("ghost")

    def test_save_is_atomic_no_temp_left(self, store):
        meta = store.create("s-1")
        meta.chunks_received = 7
        store.save_meta(meta)
        names = os.listdir(store.session_dir("s-1"))
        assert not any(name.endswith(".tmp") for name in names)
        assert store.load_meta("s-1").chunks_received == 7

    def test_from_dict_ignores_unknown_fields(self, store):
        # Forward compatibility: a newer gateway's extra keys must not
        # brick recovery on an older one.
        store.create("s-1")
        path = store.meta_path("s-1")
        data = json.loads(path.read_text())
        data["from_the_future"] = True
        path.write_text(json.dumps(data))
        assert store.load_meta("s-1").session_id == "s-1"


class TestUploadLifecycle:
    def test_append_is_the_resume_offset(self, store):
        store.create("s-1")
        assert store.part_size("s-1") == 0
        assert store.append_chunk("s-1", b"abc") == 3
        assert store.append_chunk("s-1", b"defg") == 7
        assert store.part_size("s-1") == 7
        assert store.part_path("s-1").read_bytes() == b"abcdefg"

    def test_commit_promotes_part_to_trace(self, store):
        store.create("s-1")
        store.append_chunk("s-1", b"payload")
        trace = store.commit_upload("s-1")
        assert trace.read_bytes() == b"payload"
        assert not store.part_path("s-1").exists()

    def test_commit_is_idempotent_after_crash(self, store):
        store.create("s-1")
        store.append_chunk("s-1", b"payload")
        first = store.commit_upload("s-1")
        # Crash between rename and meta save: the retry must succeed.
        again = store.commit_upload("s-1")
        assert again == first and again.read_bytes() == b"payload"

    def test_commit_without_bytes_refused(self, store):
        store.create("s-1")
        with pytest.raises(StoreError, match="no uploaded bytes"):
            store.commit_upload("s-1")

    def test_report_roundtrip(self, store):
        store.create("s-1")
        assert store.load_report("s-1") is None
        store.write_report("s-1", {"kind": "lifeguard-replay-report", "n": 3})
        assert store.load_report("s-1")["n"] == 3


class TestRecoveryScan:
    def test_scan_returns_all_sessions_sorted(self, store):
        for sid in ("s-b", "s-a", "s-c"):
            store.create(sid)
        assert [m.session_id for m in store.scan()] == ["s-a", "s-b", "s-c"]

    def test_bare_directory_scans_as_explicit_failure(self, store):
        # Crash between mkdir and the first save_meta: recovery must fail
        # the session deterministically, not silently skip it.
        store.create("s-ok")
        (store.sessions_dir / "s-torn").mkdir()
        metas = {m.session_id: m for m in store.scan()}
        assert metas["s-torn"].state == SessionState.FAILED.value
        assert "unreadable" in metas["s-torn"].reason
        assert metas["s-ok"].state == SessionState.ACCEPTING.value

    def test_corrupt_meta_scans_as_failure(self, store):
        store.create("s-1")
        store.meta_path("s-1").write_text("{not json")
        (meta,) = store.scan()
        assert meta.state == SessionState.FAILED.value

    def test_write_index(self, store):
        store.create("s-1")
        meta = store.load_meta("s-1")
        meta.state = SessionState.SETTLED.value
        path = store.write_index([meta])
        document = json.loads(path.read_text())
        assert document["sessions"] == [
            {
                "session_id": "s-1",
                "state": "settled",
                "chunks_received": 0,
                "bytes_received": 0,
                "reason": "",
            }
        ]

    def test_foreign_entries_ignored(self, store, tmp_path):
        store.create("s-1")
        (store.sessions_dir / "not a session!").mkdir()
        (store.sessions_dir / "stray.txt").write_text("x")
        assert store.list_sessions() == ["s-1"]


def test_meta_dataclass_roundtrip():
    meta = SessionMeta(
        session_id="s-9",
        state="replaying",
        chunks_received=4,
        extra={"lifeguard": "MemCheck"},
    )
    assert SessionMeta.from_dict(meta.to_dict()) == meta
