"""Seeded jitter in the supervisor's exponential backoff schedule.

The jitter must be fully deterministic under a fixed ``jitter_seed``:
``(seed, salt, attempt)`` alone decide every delay, so retry schedules
reproduce run after run while still spreading simultaneously-failing
shards apart.
"""

import dataclasses

import pytest

from repro.trace.supervisor import SupervisorPolicy, _shard_salt


def _policy(**overrides):
    defaults = dict(
        backoff_seconds=0.1,
        backoff_multiplier=2.0,
        backoff_jitter=0.25,
        jitter_seed=42,
    )
    defaults.update(overrides)
    return SupervisorPolicy(**defaults)


class TestBackoffSchedule:
    def test_no_jitter_is_pure_exponential(self):
        policy = _policy(backoff_jitter=0.0)
        assert [policy.backoff_for(a) for a in (1, 2, 3, 4)] == pytest.approx(
            [0.1, 0.2, 0.4, 0.8]
        )

    def test_same_seed_same_salt_same_schedule(self):
        first = [_policy().backoff_for(a, salt=7) for a in range(1, 6)]
        second = [_policy().backoff_for(a, salt=7) for a in range(1, 6)]
        assert first == second

    def test_delay_stays_within_jitter_band(self):
        policy = _policy()
        for attempt in range(1, 8):
            base = 0.1 * 2.0 ** (attempt - 1)
            for salt in range(32):
                delay = policy.backoff_for(attempt, salt=salt)
                assert base * 0.75 <= delay <= base * 1.25

    def test_distinct_salts_decorrelate_shards(self):
        policy = _policy()
        delays = {policy.backoff_for(3, salt=salt) for salt in range(16)}
        # Shards failing at the same attempt must not retry in lockstep.
        assert len(delays) > 12

    def test_distinct_seeds_give_distinct_schedules(self):
        a = [_policy(jitter_seed=1).backoff_for(n, salt=5) for n in range(1, 6)]
        b = [_policy(jitter_seed=2).backoff_for(n, salt=5) for n in range(1, 6)]
        assert a != b

    def test_attempt_number_reseeds_the_draw(self):
        # Consecutive attempts of one shard draw independent jitter, not a
        # shared stream whose alignment would depend on call order.
        policy = _policy(backoff_multiplier=1.0)
        delays = {policy.backoff_for(n, salt=9) for n in range(1, 9)}
        assert len(delays) > 5

    def test_invalid_jitter_rejected(self):
        with pytest.raises(ValueError, match="backoff_jitter"):
            _policy(backoff_jitter=1.5).backoff_for(1)
        with pytest.raises(ValueError, match="backoff_jitter"):
            _policy(backoff_jitter=-0.1).backoff_for(1)

    def test_never_negative(self):
        policy = _policy(backoff_seconds=0.0)
        assert policy.backoff_for(5, salt=3) == 0.0


class TestShardSalt:
    @dataclasses.dataclass
    class Task:
        trace_path: str
        chunks: tuple

    def test_salt_is_stable_identity_hash(self):
        task = self.Task("/tmp/a.lbatrace", (4, 5, 6))
        again = self.Task("/tmp/a.lbatrace", (4, 5, 6))
        assert _shard_salt(task) == _shard_salt(again)

    def test_different_shards_different_salts(self):
        base = self.Task("/tmp/a.lbatrace", (0, 1, 2))
        other_chunks = self.Task("/tmp/a.lbatrace", (3, 4, 5))
        other_trace = self.Task("/tmp/b.lbatrace", (0, 1, 2))
        salts = {_shard_salt(t) for t in (base, other_chunks, other_trace)}
        assert len(salts) == 3
