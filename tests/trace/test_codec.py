"""Codec tests: lossless round-trip over every event type and record shape."""

import random

import pytest

from repro.core.events import AnnotationRecord, EventClass, EventType, InstructionRecord
from repro.trace.codec import (
    RecordDecoder,
    RecordEncoder,
    TraceCodecError,
    decode_records,
    encode_records,
)

ANNOTATION_TYPES = [et for et in EventType if et.event_class is EventClass.RARE]
INSTRUCTION_TYPES = [et for et in EventType if et.event_class is not EventClass.RARE]


def roundtrip(records):
    data = encode_records(records)
    decoded = decode_records(data, expected_count=len(records))
    assert decoded == records
    # Re-encoding the decoded stream must reproduce identical bytes.
    assert encode_records(decoded) == data
    return data


class TestEveryEventType:
    @pytest.mark.parametrize("event_type", INSTRUCTION_TYPES, ids=lambda e: e.value)
    def test_instruction_type_roundtrip(self, event_type):
        roundtrip(
            [
                InstructionRecord(pc=0x8048000, event_type=event_type),
                InstructionRecord(
                    pc=0x8048004,
                    event_type=event_type,
                    dest_reg=3,
                    src_reg=5,
                    dest_addr=0x0900_0010,
                    src_addr=0x0900_0020,
                    size=4,
                    is_load=True,
                    is_store=True,
                    base_reg=6,
                    index_reg=7,
                    is_cond_test=True,
                    is_indirect_jump=True,
                    thread_id=1,
                    immediate=-42,
                ),
            ]
        )

    @pytest.mark.parametrize("event_type", ANNOTATION_TYPES, ids=lambda e: e.value)
    def test_annotation_type_roundtrip(self, event_type):
        roundtrip(
            [
                AnnotationRecord(event_type=event_type),
                AnnotationRecord(
                    event_type=event_type,
                    address=0x0A00_0000,
                    size=128,
                    thread_id=2,
                    pc=0x8048100,
                    payload=-9,
                ),
            ]
        )


def _random_record(rng):
    if rng.random() < 0.1:
        return AnnotationRecord(
            event_type=rng.choice(ANNOTATION_TYPES),
            address=rng.randrange(0, 1 << 32) if rng.random() < 0.8 else None,
            size=rng.randrange(0, 1 << 16),
            thread_id=rng.randrange(0, 4),
            pc=rng.randrange(0, 1 << 32),
            payload=rng.randrange(-(1 << 31), 1 << 31) if rng.random() < 0.3 else None,
        )
    return InstructionRecord(
        pc=rng.randrange(0, 1 << 32),
        event_type=rng.choice(INSTRUCTION_TYPES),
        dest_reg=rng.randrange(0, 8) if rng.random() < 0.5 else None,
        src_reg=rng.randrange(0, 8) if rng.random() < 0.5 else None,
        dest_addr=rng.randrange(0, 1 << 32) if rng.random() < 0.4 else None,
        src_addr=rng.randrange(0, 1 << 32) if rng.random() < 0.4 else None,
        size=rng.choice([0, 1, 2, 4, 8]),
        is_load=rng.random() < 0.3,
        is_store=rng.random() < 0.3,
        base_reg=rng.randrange(0, 8) if rng.random() < 0.3 else None,
        index_reg=rng.randrange(0, 8) if rng.random() < 0.1 else None,
        is_cond_test=rng.random() < 0.1,
        is_indirect_jump=rng.random() < 0.05,
        thread_id=rng.randrange(0, 4),
        immediate=rng.randrange(-(1 << 31), 1 << 31) if rng.random() < 0.2 else None,
    )


class TestPropertyStyle:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_streams_roundtrip_byte_identically(self, seed):
        rng = random.Random(seed)
        records = [_random_record(rng) for _ in range(400)]
        roundtrip(records)

    def test_incremental_decode_matches_bulk(self):
        rng = random.Random(99)
        records = [_random_record(rng) for _ in range(100)]
        data = encode_records(records)
        decoder = RecordDecoder()
        offset = 0
        out = []
        while offset < len(data):
            record, offset = decoder.decode(data, offset)
            out.append(record)
        assert out == records

    def test_measure_matches_encode(self):
        rng = random.Random(7)
        encoder = RecordEncoder()
        for _ in range(200):
            record = _random_record(rng)
            measured = encoder.measure(record)
            assert measured == len(encoder.encode(record))


class TestBatchDecode:
    def test_decode_many_matches_stepwise_decode(self):
        rng = random.Random(11)
        records = [_random_record(rng) for _ in range(300)]
        data = encode_records(records)

        stepwise_decoder = RecordDecoder()
        offset = 0
        stepwise = []
        while offset < len(data):
            record, offset = stepwise_decoder.decode(data, offset)
            stepwise.append(record)

        batch_decoder = RecordDecoder()
        batch, consumed = batch_decoder.decode_many(data)
        assert batch == stepwise == records
        assert consumed == len(data)

    def test_decode_many_continues_delta_state_between_calls(self):
        rng = random.Random(12)
        records = [_random_record(rng) for _ in range(60)]
        data = encode_records(records)
        decoder = RecordDecoder()
        first, offset = decoder.decode_many(data, count=25)
        rest, _ = decoder.decode_many(data[offset:])
        assert first + rest == records

    def test_decode_many_count_stops_early(self):
        rng = random.Random(13)
        records = [_random_record(rng) for _ in range(40)]
        data = encode_records(records)
        out, consumed = RecordDecoder().decode_many(data, count=10)
        assert out == records[:10]
        assert consumed < len(data)

    def test_decode_many_truncated_buffer_raises(self):
        rng = random.Random(14)
        records = [_random_record(rng) for _ in range(20)]
        data = encode_records(records)
        with pytest.raises(TraceCodecError):
            RecordDecoder().decode_many(data[: len(data) - 1], count=len(records))


class TestDeltaState:
    def test_reset_restarts_delta_chains(self):
        record = InstructionRecord(pc=0x1000, event_type=EventType.REG_TO_REG, dest_reg=1)
        encoder = RecordEncoder()
        first = encoder.encode(record)
        encoder.reset()
        assert encoder.encode(record) == first

    def test_chunked_streams_decode_independently(self):
        rng = random.Random(3)
        chunk_a = [_random_record(rng) for _ in range(50)]
        chunk_b = [_random_record(rng) for _ in range(50)]
        # Encoded separately (fresh encoder each), decoded separately.
        assert decode_records(encode_records(chunk_b), expected_count=50) == chunk_b
        assert decode_records(encode_records(chunk_a), expected_count=50) == chunk_a


class TestErrorPaths:
    def test_truncated_stream_raises(self):
        data = encode_records(
            [InstructionRecord(pc=0x1000, event_type=EventType.MEM_TO_REG,
                               dest_reg=1, src_addr=0x900000, size=4, is_load=True)]
        )
        with pytest.raises(TraceCodecError):
            decode_records(data[:-1], expected_count=1)

    def test_unknown_wire_id_raises(self):
        with pytest.raises(TraceCodecError):
            decode_records(b"\xff\x7f\x00\x00", expected_count=1)

    def test_trailing_garbage_raises_with_expected_count(self):
        data = encode_records([AnnotationRecord(EventType.MALLOC, address=16, size=4)])
        with pytest.raises(TraceCodecError):
            decode_records(data + b"\x00\x00", expected_count=1)

    def test_unbounded_varint_raises(self):
        with pytest.raises(TraceCodecError):
            decode_records(b"\x80" * 12, expected_count=1)
