"""Columnar decode: structure-of-arrays equivalence with the object decoder."""

import random

import pytest

from repro.core.events import AnnotationRecord, EventType, InstructionRecord
from repro.trace.codec import (
    RecordColumns,
    RecordDecoder,
    RecordEncoder,
    TraceCodecError,
    decode_record_columns,
    decode_records,
    encode_records,
)


def _random_records(seed, count=400):
    rng = random.Random(seed)
    event_types = [
        EventType.MEM_TO_REG, EventType.REG_TO_MEM, EventType.REG_SELF,
        EventType.CONTROL, EventType.COND_TEST, EventType.IMM_TO_MEM,
        EventType.DEST_REG_OP_REG, EventType.OTHER,
    ]
    records = []
    pc = 0x0804_8000
    for _ in range(count):
        if rng.random() < 0.05:
            records.append(
                AnnotationRecord(
                    event_type=rng.choice([EventType.MALLOC, EventType.FREE, EventType.LOCK]),
                    address=rng.randrange(0, 1 << 32) if rng.random() < 0.8 else None,
                    size=rng.randrange(0, 4096),
                    thread_id=rng.randrange(0, 4),
                    pc=pc,
                    payload=rng.randrange(-1000, 1000) if rng.random() < 0.3 else None,
                )
            )
            continue
        pc += rng.choice([2, 4, 6, -8, 1024])
        records.append(
            InstructionRecord(
                pc=pc,
                event_type=rng.choice(event_types),
                dest_reg=rng.randrange(0, 8) if rng.random() < 0.6 else None,
                src_reg=rng.randrange(0, 8) if rng.random() < 0.5 else None,
                dest_addr=rng.randrange(0, 1 << 32) if rng.random() < 0.4 else None,
                src_addr=rng.randrange(0, 1 << 32) if rng.random() < 0.4 else None,
                size=rng.choice([0, 1, 2, 4, 8]),
                is_load=rng.random() < 0.3,
                is_store=rng.random() < 0.3,
                base_reg=rng.randrange(0, 8) if rng.random() < 0.3 else None,
                index_reg=rng.randrange(0, 8) if rng.random() < 0.2 else None,
                is_cond_test=rng.random() < 0.1,
                is_indirect_jump=rng.random() < 0.05,
                thread_id=rng.randrange(0, 4),
                immediate=rng.randrange(-1 << 31, 1 << 31) if rng.random() < 0.2 else None,
            )
        )
    return records


@pytest.mark.parametrize("seed", [1, 7, 42])
def test_decode_columns_matches_object_decode(seed):
    records = _random_records(seed)
    data = encode_records(records)
    columns = decode_record_columns(data, len(records))
    assert columns.n == len(records)
    assert columns.records() == decode_records(data, len(records)) == records


@pytest.mark.parametrize("seed", [3, 9])
def test_run_table_partitions_rows_with_uniform_keys(seed):
    records = _random_records(seed)
    columns = decode_record_columns(encode_records(records), len(records))
    covered = 0
    for start, stop, ordinal, flags in columns.runs:
        assert start == covered and stop > start
        covered = stop
        for row in range(start, stop):
            if ordinal < 0:
                assert columns.kind[row] == 1
            else:
                assert columns.kind[row] == 0
                assert columns.ordinal[row] == ordinal
                assert columns.flags[row] == flags
    assert covered == columns.n


def test_run_table_groups_equal_keys_maximally():
    records = [
        InstructionRecord(pc=4 * i, event_type=EventType.REG_SELF, dest_reg=1)
        for i in range(5)
    ]
    columns = decode_record_columns(encode_records(records), len(records))
    assert len(columns.runs) == 1
    start, stop, ordinal, _flags = columns.runs[0]
    assert (start, stop, ordinal) == (0, 5, EventType.REG_SELF.ordinal)


def test_from_records_round_trips_and_builds_runs():
    records = _random_records(11, count=120)
    columns = RecordColumns.from_records(records)
    assert columns.records() == records
    assert columns.runs and columns.runs[-1][1] == len(records)
    # decoded and flattened runs agree
    decoded = decode_record_columns(encode_records(records), len(records))
    assert decoded.runs == columns.runs


def test_decode_columns_accepts_memoryview():
    records = _random_records(5, count=60)
    data = encode_records(records)
    columns = decode_record_columns(memoryview(data), len(records))
    assert columns.records() == records


def test_encode_into_matches_encode():
    records = _random_records(13, count=80)
    encoder_a = RecordEncoder()
    encoder_b = RecordEncoder()
    buffer = bytearray()
    for record in records:
        expected = encoder_a.encode(record)
        written = encoder_b.encode_into(buffer, record)
        assert written == len(expected)
        assert bytes(buffer[-written:]) == expected


def test_decode_columns_trailing_bytes_rejected():
    records = _random_records(17, count=10)
    data = encode_records(records) + b"\x00"
    with pytest.raises(TraceCodecError):
        decode_record_columns(data, len(records))


def test_decode_columns_truncated_stream_rejected_and_state_committed():
    records = _random_records(19, count=20)
    data = encode_records(records)
    decoder = RecordDecoder()
    with pytest.raises(TraceCodecError):
        decoder.decode_columns(data[: len(data) // 2], len(records))
    # the delta state stopped at the last fully decoded record, exactly
    # like decode_many
    reference = RecordDecoder()
    with pytest.raises(TraceCodecError):
        reference.decode_many(data[: len(data) // 2], len(records))
    assert decoder._last_pc == reference._last_pc
    assert decoder._last_addr == reference._last_addr
