"""Seeded fuzz round-trips and corruption injection for the trace codec.

Boundary cases the deterministic codec tests do not reach: zero-length
annotation payloads, maximum-width varints (near the 10-byte LEB128
ceiling), backwards address deltas (descending access patterns), and chunk
boundaries interacting with record boundaries.  Corruption injection
asserts the decode side fails with a clean :class:`TraceCodecError` /
:class:`TraceFormatError` -- never an ``IndexError``/``struct.error``
leaking out of the hot loop -- instead of silently misdecoding.
"""

import random

import pytest

from repro.core.events import EVENT_TYPES, AnnotationRecord, EventType, InstructionRecord
from repro.trace.codec import (
    RecordDecoder,
    RecordEncoder,
    TraceCodecError,
    decode_records,
    encode_records,
)
from repro.trace.tracefile import TraceFormatError, TraceReader, TraceWriter

#: Event types usable in instruction records (annotation types excluded).
_INSTRUCTION_TYPES = [t for t in EVENT_TYPES if not t.is_rare]
_ANNOTATION_TYPES = [t for t in EVENT_TYPES if t.is_rare]

#: Near the unsigned-varint ceiling: zigzag doubles the magnitude, and the
#: decoder rejects varints longer than 10 bytes (shift > 70), so 2**62
#: deltas exercise maximum-width encodings without overflowing.
HUGE = 2 ** 62


def _random_instruction(rng: random.Random, pc: int, addr: int) -> InstructionRecord:
    return InstructionRecord(
        pc=pc,
        event_type=rng.choice(_INSTRUCTION_TYPES),
        dest_reg=rng.choice([None, rng.randrange(8)]),
        src_reg=rng.choice([None, rng.randrange(8)]),
        dest_addr=rng.choice([None, addr]),
        src_addr=rng.choice([None, addr ^ rng.randrange(1 << 16)]),
        size=rng.choice([0, 1, 2, 4, 8]),
        is_load=rng.random() < 0.5,
        is_store=rng.random() < 0.5,
        base_reg=rng.choice([None, rng.randrange(8)]),
        index_reg=rng.choice([None, rng.randrange(8)]),
        is_cond_test=rng.random() < 0.1,
        is_indirect_jump=rng.random() < 0.1,
        thread_id=rng.randrange(4),
        immediate=rng.choice([None, 0, -1, rng.randrange(-HUGE, HUGE)]),
    )


def _random_annotation(rng: random.Random, addr: int) -> AnnotationRecord:
    return AnnotationRecord(
        event_type=rng.choice(_ANNOTATION_TYPES),
        address=rng.choice([None, addr]),
        size=rng.choice([0, 0, 1, 4096]),          # zero-length payloads common
        thread_id=rng.randrange(4),
        pc=rng.choice([0, rng.randrange(1 << 32)]),
        payload=rng.choice([None, 0, -1, rng.randrange(-HUGE, HUGE)]),
    )


def _fuzz_stream(seed: int, count: int = 400):
    """A seeded stream mixing wild PCs/addresses, forward and backward."""
    rng = random.Random(seed)
    records = []
    pc = rng.randrange(1 << 32)
    addr = rng.randrange(1 << 32)
    for _ in range(count):
        # Deltas wander in both directions, occasionally by huge jumps.
        pc += rng.choice([4, 4, -4, rng.randrange(-HUGE, HUGE)])
        addr += rng.choice([4, 8, -4, -64, rng.randrange(-(1 << 40), 1 << 40)])
        if rng.random() < 0.15:
            records.append(_random_annotation(rng, addr))
        else:
            records.append(_random_instruction(rng, pc, addr))
    return records


class TestFuzzRoundTrip:
    @pytest.mark.parametrize("seed", range(8))
    def test_stream_round_trips_losslessly(self, seed):
        records = _fuzz_stream(seed)
        data = encode_records(records)
        assert decode_records(data, expected_count=len(records)) == records
        # Re-encoding the decoded stream reproduces the identical bytes.
        assert encode_records(decode_records(data)) == data

    @pytest.mark.parametrize("seed", range(4))
    def test_per_record_decode_matches_batch(self, seed):
        records = _fuzz_stream(seed, count=150)
        data = encode_records(records)
        decoder = RecordDecoder()
        out, offset = [], 0
        while offset < len(data):
            record, offset = decoder.decode(data, offset)
            out.append(record)
        assert out == records

    def test_zero_length_annotation_payloads(self):
        records = [
            AnnotationRecord(EventType.MALLOC, address=0x1000, size=0),
            AnnotationRecord(EventType.PRINTF, payload=0),
            AnnotationRecord(EventType.SYSCALL_OTHER),
            AnnotationRecord(EventType.FREE, address=0x1000, size=0, payload=None),
        ]
        data = encode_records(records)
        assert decode_records(data, expected_count=len(records)) == records

    def test_maximum_width_varints(self):
        records = [
            InstructionRecord(pc=HUGE, event_type=EventType.IMM_TO_REG, immediate=-HUGE),
            InstructionRecord(pc=0, event_type=EventType.MEM_TO_REG,
                              src_addr=HUGE, size=4, is_load=True),
            AnnotationRecord(EventType.MALLOC, address=0, size=HUGE, payload=HUGE - 1),
        ]
        data = encode_records(records)
        assert decode_records(data, expected_count=len(records)) == records

    def test_backwards_address_deltas(self):
        # Strictly descending addresses: every delta is negative.
        records = [
            InstructionRecord(pc=0x1000 + 4 * i, event_type=EventType.REG_TO_MEM,
                              dest_addr=0x9000_0000 - 64 * i, size=4, is_store=True)
            for i in range(200)
        ]
        data = encode_records(records)
        assert decode_records(data, expected_count=len(records)) == records


class TestChunkBoundaries:
    @pytest.mark.parametrize("chunk_bytes", [1, 5, 23, 64])
    def test_chunks_never_split_a_record(self, tmp_path, chunk_bytes, seed=3):
        """Chunks close only at record boundaries, even absurdly small ones.

        With ``chunk_bytes=1`` every record lands in its own chunk; odd
        sizes land the close threshold mid-record, which must defer the
        boundary to the end of that record.  Every chunk must decode
        independently (the delta chains reset per chunk) and the
        concatenation must reproduce the stream.
        """
        records = _fuzz_stream(seed, count=120)
        path = tmp_path / f"chunks{chunk_bytes}.lbatrace"
        with TraceWriter(path, chunk_bytes=chunk_bytes, compress=False) as writer:
            writer.extend(records)
        with TraceReader(path) as reader:
            assert sum(chunk.records for chunk in reader.chunks) == len(records)
            out = []
            for index in range(reader.num_chunks):
                out.extend(reader.read_chunk(index))
        assert out == records

    def test_single_byte_chunks_are_one_record_each(self, tmp_path):
        records = _fuzz_stream(7, count=40)
        path = tmp_path / "tiny.lbatrace"
        with TraceWriter(path, chunk_bytes=1, compress=False) as writer:
            writer.extend(records)
        with TraceReader(path) as reader:
            assert reader.num_chunks == len(records)
            assert all(chunk.records == 1 for chunk in reader.chunks)


class TestCorruptionInjection:
    def test_every_single_byte_flip_fails_cleanly_or_differs(self):
        """Raw-codec corruption: clean ``TraceCodecError`` or a changed decode.

        A flipped byte cannot crash the decoder with anything but
        :class:`TraceCodecError`; when the stream still parses (varints are
        dense, so some flips stay decodable) the count/trailing-byte
        integrity check must catch short streams, and a full reparse must
        never silently reproduce the original records.
        """
        records = _fuzz_stream(11, count=60)
        data = bytearray(encode_records(records))
        for position in range(len(data)):
            corrupt = bytes(
                data[:position] + bytes([data[position] ^ 0x41]) + data[position + 1:]
            )
            try:
                decoded = decode_records(corrupt, expected_count=len(records))
            except TraceCodecError:
                continue
            assert decoded != records, f"silent identical decode at byte {position}"

    def test_truncation_raises_codec_error(self):
        records = _fuzz_stream(13, count=30)
        data = encode_records(records)
        for cut in (1, len(data) // 2, len(data) - 1):
            with pytest.raises(TraceCodecError):
                decode_records(data[:cut], expected_count=len(records))

    def test_unknown_wire_id_raises(self):
        bad = bytearray(encode_records([AnnotationRecord(EventType.MALLOC, address=4)]))
        bad[0] = (len(EVENT_TYPES) << 1) | 1      # wire id past the taxonomy
        with pytest.raises(TraceCodecError, match="wire id"):
            decode_records(bytes(bad))

    def test_overlong_varint_raises(self):
        decoder = RecordDecoder()
        with pytest.raises(TraceCodecError, match="varint"):
            decoder.decode(b"\xff" * 11)

    @pytest.mark.parametrize("compress", [True, False])
    def test_trace_file_payload_corruption(self, tmp_path, compress):
        """Stored-chunk corruption surfaces as TraceFormatError on read."""
        records = _fuzz_stream(17, count=200)
        path = tmp_path / "corrupt.lbatrace"
        with TraceWriter(path, chunk_bytes=512, compress=compress) as writer:
            writer.extend(records)
        clean = path.read_bytes()
        with TraceReader(path) as reader:
            first = reader.chunks[0]
        rng = random.Random(19)
        flips = 0
        caught = 0
        for _ in range(32):
            position = first.offset + rng.randrange(first.stored_len)
            corrupted = bytearray(clean)
            corrupted[position] ^= 0xFF
            path.write_bytes(bytes(corrupted))
            with TraceReader(path) as reader:
                flips += 1
                try:
                    decoded = reader.read_chunk(0)
                except TraceFormatError:
                    caught += 1
                else:
                    # zlib's checksum misses nothing; uncompressed chunks
                    # may still parse, but never silently identically.
                    assert not compress
                    assert decoded != records[: first.records]
        assert flips == 32
        if compress:
            assert caught == flips
