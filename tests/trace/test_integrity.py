"""Trace-integrity property tests: damage is detected, never silent.

The invariant under test: a bit flip anywhere in a trace file -- chunk
payload, index entry region, or totals footer -- must surface as a
:class:`TraceFormatError` (strict) or an exact quarantine entry
(degrade), never as a silently wrong replay.  Also covers the version-1
compatibility path (v1 traces carry no CRCs but corruption is still
caught by the decompressor/codec) and the ``python -m repro.trace
verify`` audit command.
"""

import json
import random
import struct

import pytest

from repro.faultinject.corrupt import corrupt_byte, flip_chunk_bytes, truncate_trace
from repro.lifeguards import MemCheck
from repro.trace.cli import main as trace_cli
from repro.trace.replay import replay_trace
from repro.trace.tracefile import (
    _HEADER,
    _INDEX_ENTRY,
    _INDEX_ENTRY_V1,
    _INDEX_HEADER,
    _INDEX_TOTALS,
    TraceFormatError,
    TraceReader,
    TraceWriter,
    verify_trace,
)
from repro.workloads import bugs
from tests.trace.test_codec import _random_record
from tests.trace.test_replay import capture


def _write_trace(path, count=500, seed=11, chunk_bytes=512, compress=True):
    rng = random.Random(seed)
    with TraceWriter(path, chunk_bytes=chunk_bytes, compress=compress) as writer:
        writer.extend(_random_record(rng) for _ in range(count))
    return writer.stats


def _index_offset(path):
    with open(path, "rb") as handle:
        header = handle.read(_HEADER.size)
    return _HEADER.unpack(header)[4]


def _rewrite_as_v1(path):
    """Rewrite a v2 trace in the version-1 layout (no per-chunk CRCs).

    The chunk payload region is byte-identical between versions; only the
    header's version field and the index entry width differ, so a v1 file
    is reconstructed from the v2 reader's metadata.
    """
    with TraceReader(path) as reader:
        assert reader.version == 2
        chunks = list(reader.chunks)
        stats = reader.stats
        compressed = reader.compressed
        chunk_bytes = reader.chunk_bytes
        index_offset = reader._index_offset
    with open(path, "rb") as handle:
        payload = handle.read()[_HEADER.size:index_offset]
    with open(path, "wb") as handle:
        flags = 1 if compressed else 0
        handle.write(_HEADER.pack(b"LBATRC01", 1, flags, chunk_bytes, index_offset))
        handle.write(payload)
        handle.write(_INDEX_HEADER.pack(b"INDX", len(chunks)))
        for chunk in chunks:
            handle.write(_INDEX_ENTRY_V1.pack(
                chunk.offset, chunk.stored_len, chunk.raw_len, chunk.records
            ))
        handle.write(_INDEX_TOTALS.pack(
            stats.records, stats.instructions, stats.annotations, stats.raw_bytes
        ))


class TestPayloadFlips:
    """Seeded bit flips inside chunk payloads are always caught."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    @pytest.mark.parametrize("compress", [False, True], ids=["raw", "zlib"])
    def test_flipped_chunk_never_reads_silently(self, tmp_path, seed, compress):
        path = tmp_path / "t.trace"
        _write_trace(path, seed=seed, compress=compress)
        with TraceReader(path) as reader:
            chunk = random.Random(seed).randrange(reader.num_chunks)
        offsets = flip_chunk_bytes(path, chunk, seed=seed)
        assert offsets  # the helper actually changed bytes
        with TraceReader(path) as reader:
            with pytest.raises(TraceFormatError, match=f"chunk {chunk} "):
                reader.read_chunk(chunk)
        audit = verify_trace(path)
        assert [bad.index for bad in audit.bad_chunks] == [chunk]
        assert not audit.ok

    def test_flip_is_deterministic(self, tmp_path):
        first = tmp_path / "a.trace"
        second = tmp_path / "b.trace"
        _write_trace(first)
        _write_trace(second)
        assert flip_chunk_bytes(first, 1, seed=9) == flip_chunk_bytes(second, 1, seed=9)

    def test_flipped_chunk_quarantined_under_degrade(self, tmp_path):
        """Replay of a damaged trace: strict raises, degrade accounts."""
        path, _ = capture(tmp_path, bugs.uninitialized_computation(), MemCheck())
        with TraceReader(path) as reader:
            chunk = reader.num_chunks // 2
            lost = reader.chunks[chunk].records
            total = reader.num_records
        flip_chunk_bytes(path, chunk, seed=5)
        with pytest.raises(TraceFormatError, match=f"chunk {chunk}"):
            replay_trace(path, MemCheck, quarantine="strict")
        degraded = replay_trace(path, MemCheck, quarantine="degrade")
        assert [c.chunk for c in degraded.skipped_chunks] == [chunk]
        assert degraded.skipped_chunks[0].reason == "corrupt"
        assert degraded.skipped_records == lost
        assert degraded.records == total - lost
        assert degraded.degraded


class TestIndexFlips:
    """Flips in the index entry region can never produce a clean audit."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
    def test_index_entry_flip_detected(self, tmp_path, seed):
        path = tmp_path / "t.trace"
        _write_trace(path, seed=seed)
        index_offset = _index_offset(path)
        with TraceReader(path) as reader:
            num_chunks = reader.num_chunks
        entries_start = index_offset + _INDEX_HEADER.size
        entries_len = num_chunks * _INDEX_ENTRY.size
        offset = entries_start + random.Random(seed).randrange(entries_len)
        corrupt_byte(path, offset, xor=random.Random(seed).randint(1, 255))
        audit = verify_trace(path)
        assert not audit.ok

    def test_flipped_crc_field_blames_its_chunk(self, tmp_path):
        path = tmp_path / "t.trace"
        _write_trace(path)
        index_offset = _index_offset(path)
        # Last u32 of entry 0 is its CRC field.
        crc_offset = index_offset + _INDEX_HEADER.size + _INDEX_ENTRY.size - 4
        corrupt_byte(path, crc_offset)
        with TraceReader(path) as reader:
            with pytest.raises(TraceFormatError, match="chunk 0 CRC mismatch"):
                reader.read_chunk(0)

    def test_flipped_record_count_rejected_at_open(self, tmp_path):
        path = tmp_path / "t.trace"
        _write_trace(path)
        index_offset = _index_offset(path)
        # The records u32 sits right before the CRC in entry 0.
        records_offset = index_offset + _INDEX_HEADER.size + _INDEX_ENTRY.size - 8
        corrupt_byte(path, records_offset)
        with pytest.raises(TraceFormatError, match="corrupt index"):
            TraceReader(path)


class TestTotalsFooterFlips:
    """Every byte of the totals footer is load-bearing: any flip rejects."""

    def test_any_footer_byte_flip_rejected_at_open(self, tmp_path):
        original = tmp_path / "good.trace"
        _write_trace(original)
        data = original.read_bytes()
        footer_start = len(data) - _INDEX_TOTALS.size
        for delta in range(_INDEX_TOTALS.size):
            path = tmp_path / f"footer{delta}.trace"
            path.write_bytes(data)
            corrupt_byte(path, footer_start + delta)
            with pytest.raises(TraceFormatError, match="index totals|inconsistent"):
                TraceReader(path)
            audit = verify_trace(path)
            assert audit.file_error is not None and not audit.ok

    def test_truncation_rejected_at_open(self, tmp_path):
        path = tmp_path / "t.trace"
        _write_trace(path)
        truncate_trace(path, fraction=0.5)
        with pytest.raises(TraceFormatError):
            TraceReader(path)


class TestVersion1Compat:
    def test_v1_trace_reads_without_crcs(self, tmp_path):
        path = tmp_path / "t.trace"
        rng = random.Random(3)
        records = [_random_record(rng) for _ in range(400)]
        with TraceWriter(path, chunk_bytes=512) as writer:
            writer.extend(records)
        _rewrite_as_v1(path)
        with TraceReader(path) as reader:
            assert reader.version == 1
            assert all(info.crc is None for info in reader.chunks)
            assert list(reader) == records
        audit = verify_trace(path)
        assert audit.ok and audit.version == 1

    def test_v1_payload_corruption_still_caught(self, tmp_path):
        """Without CRCs the decompressor/codec is the (weaker) net."""
        path = tmp_path / "t.trace"
        _write_trace(path, compress=True)
        _rewrite_as_v1(path)
        with TraceReader(path) as reader:
            chunk = reader.num_chunks - 1
        flip_chunk_bytes(path, chunk, seed=1)
        audit = verify_trace(path)
        assert [bad.index for bad in audit.bad_chunks] == [chunk]

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "t.trace"
        _write_trace(path)
        data = bytearray(path.read_bytes())
        struct.pack_into("<H", data, 8, 99)
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match="unsupported trace version 99"):
            TraceReader(path)


class TestVerifyCli:
    def test_clean_trace_passes(self, tmp_path, capsys):
        path = tmp_path / "t.trace"
        _write_trace(path)
        assert trace_cli(["verify", str(path)]) == 0
        out = capsys.readouterr().out
        assert "ok" in out and "CRCs verified" in out

    def test_corrupt_trace_fails_and_names_chunk(self, tmp_path, capsys):
        path = tmp_path / "t.trace"
        _write_trace(path)
        flip_chunk_bytes(path, 1, seed=0)
        assert trace_cli(["verify", str(path)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "chunk 1" in out

    def test_json_output(self, tmp_path, capsys):
        good = tmp_path / "good.trace"
        bad = tmp_path / "bad.trace"
        _write_trace(good)
        _write_trace(bad)
        flip_chunk_bytes(bad, 0, seed=0)
        assert trace_cli(["verify", "--json", str(good), str(bad)]) == 1
        lines = capsys.readouterr().out.strip().splitlines()
        documents = [json.loads(line) for line in lines]
        assert [doc["ok"] for doc in documents] == [True, False]
        assert documents[1]["bad_chunks"][0]["chunk"] == 0

    def test_no_decode_still_catches_crc_damage(self, tmp_path):
        path = tmp_path / "t.trace"
        _write_trace(path)
        flip_chunk_bytes(path, 0, seed=0)
        assert trace_cli(["verify", "--no-decode", str(path)]) == 1

    def test_missing_file_reported(self, tmp_path, capsys):
        assert trace_cli(["verify", str(tmp_path / "nope.trace")]) == 1
        assert "FAIL" in capsys.readouterr().out
