"""Trace repair: recover the valid prefix of damaged files, atomically.

``repair_trace`` (and ``python -m repro.trace verify --repair``) must
truncate a damaged trace to its longest CRC-valid chunk prefix and
rewrite the footer atomically.  Covered damage shapes: a corrupted
middle chunk, truncation mid-chunk (the capture died writing payload),
truncation mid-footer (the capture died writing the index/totals), and
the unrecoverable cases -- with the repaired file always passing a full
``verify_trace`` audit and replaying cleanly afterwards.
"""

import json
import os
import random
import shutil

import pytest

from repro.faultinject.corrupt import flip_chunk_bytes, truncate_trace
from repro.trace.cli import main as trace_cli
from repro.trace.replay import replay_trace
from repro.trace.tracefile import (
    _HEADER,
    TraceReader,
    TraceWriter,
    repair_trace,
    verify_trace,
)
from tests.trace.test_codec import _random_record


def _write_trace(path, count=400, seed=7, chunk_bytes=512, compress=True):
    rng = random.Random(seed)
    with TraceWriter(path, chunk_bytes=chunk_bytes, compress=compress) as writer:
        writer.extend(_random_record(rng) for _ in range(count))
    return writer.stats


def _index_offset(path):
    with open(path, "rb") as handle:
        return _HEADER.unpack(handle.read(_HEADER.size))[4]


@pytest.fixture
def trace(tmp_path):
    path = str(tmp_path / "base.lbatrace")
    _write_trace(path)
    with TraceReader(path) as reader:
        assert reader.num_chunks >= 4, "damage shapes need several chunks"
    return path


def _copy(trace, tmp_path, name):
    path = str(tmp_path / name)
    shutil.copyfile(trace, path)
    return path


class TestRepairShapes:
    def test_intact_file_is_left_untouched(self, trace):
        before = open(trace, "rb").read()
        repair = repair_trace(trace)
        assert repair.action == "intact"
        assert repair.ok and not repair.changed
        assert repair.lost_chunks == 0 and repair.lost_records == 0
        assert open(trace, "rb").read() == before

    def test_damaged_middle_chunk_truncates_to_valid_prefix(self, trace, tmp_path):
        path = _copy(trace, tmp_path, "dmg.lbatrace")
        with TraceReader(path) as reader:
            chunks = reader.num_chunks
            records = [info.records for info in reader.chunks]
        victim = chunks // 2
        flip_chunk_bytes(path, victim, seed=3)
        repair = repair_trace(path)
        assert repair.action == "repaired" and repair.changed
        # Everything before the damaged chunk survives; it and everything
        # after it (unverifiable against the live stream) is dropped.
        assert repair.kept_chunks == victim
        assert repair.kept_records == sum(records[:victim])
        assert repair.lost_chunks == chunks - victim
        assert repair.lost_records == sum(records[victim:])
        audit = verify_trace(path)
        assert audit.ok and len(audit.chunks) == victim

    def test_mid_chunk_truncation_recovers_whole_chunks(self, trace, tmp_path):
        path = _copy(trace, tmp_path, "midchunk.lbatrace")
        # Cut inside the chunk payload region, before any index survives.
        truncate_trace(path, keep_bytes=_index_offset(path) // 2)
        repair = repair_trace(path)
        assert repair.action == "repaired"
        assert repair.kept_chunks >= 1
        # The index was lost with the tail, so the damage extent is unknown.
        assert repair.lost_chunks is None and repair.lost_records is None
        audit = verify_trace(path)
        assert audit.ok and len(audit.chunks) == repair.kept_chunks

    def test_mid_footer_truncation_loses_no_chunk(self, trace, tmp_path):
        path = _copy(trace, tmp_path, "midfooter.lbatrace")
        with TraceReader(path) as reader:
            chunks = reader.num_chunks
            total_records = sum(info.records for info in reader.chunks)
        # Cut inside the totals footer: every chunk and index entry survives.
        truncate_trace(path, keep_bytes=os.path.getsize(path) - 6)
        assert not verify_trace(path).ok
        repair = repair_trace(path)
        assert repair.action == "repaired"
        assert repair.kept_chunks == chunks
        assert repair.kept_records == total_records
        # The totals footer itself was destroyed, so the original population
        # is unknowable even though every chunk survived.
        assert repair.lost_chunks is None
        assert verify_trace(path).ok

    def test_repaired_file_replays_cleanly(self, trace, tmp_path):
        path = _copy(trace, tmp_path, "replayable.lbatrace")
        truncate_trace(path, keep_bytes=_index_offset(path) // 2)
        repair = repair_trace(path)
        assert repair.ok
        result = replay_trace(path, "MemCheck")
        assert result.chunks == repair.kept_chunks
        assert result.records == repair.kept_records

    def test_unrecoverable_when_no_chunk_survives(self, trace, tmp_path):
        path = _copy(trace, tmp_path, "hopeless.lbatrace")
        truncate_trace(path, keep_bytes=_HEADER.size + 3)
        repair = repair_trace(path)
        assert repair.action == "unrecoverable"
        assert not repair.ok and not repair.changed

    def test_uncompressed_truncation_is_unrecoverable(self, tmp_path):
        # Raw chunks are not self-terminating streams: once the index is
        # gone there is no boundary evidence, and repair must say so
        # rather than guess.
        path = str(tmp_path / "raw.lbatrace")
        _write_trace(path, compress=False)
        truncate_trace(path, keep_bytes=_index_offset(path) // 2)
        repair = repair_trace(path)
        assert repair.action == "unrecoverable"
        assert "uncompressed" in repair.detail

    def test_repair_is_atomic_no_temp_left_behind(self, trace, tmp_path):
        path = _copy(trace, tmp_path, "atomic.lbatrace")
        flip_chunk_bytes(path, 1, seed=5)
        repair_trace(path)
        leftovers = [n for n in os.listdir(tmp_path) if n.endswith(".repair")]
        assert leftovers == []
        assert verify_trace(path).ok


class TestRepairCli:
    def test_verify_repair_fixes_and_exits_zero(self, trace, tmp_path, capsys):
        path = _copy(trace, tmp_path, "cli.lbatrace")
        truncate_trace(path, keep_bytes=os.path.getsize(path) - 6)
        assert trace_cli(["verify", path]) == 1
        capsys.readouterr()
        assert trace_cli(["verify", "--repair", path]) == 0
        out = capsys.readouterr().out
        assert "repaired" in out and "ok" in out
        # Idempotent: a second repair pass finds an intact file.
        assert trace_cli(["verify", "--repair", path]) == 0

    def test_verify_repair_json_document(self, trace, tmp_path, capsys):
        path = _copy(trace, tmp_path, "clijson.lbatrace")
        flip_chunk_bytes(path, 2, seed=9)
        assert trace_cli(["verify", "--repair", "--json", path]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["ok"]
        assert document["repair"]["action"] == "repaired"
        assert document["repair"]["kept_chunks"] == document["chunks"]

    def test_unrecoverable_file_still_fails_command(self, trace, tmp_path, capsys):
        path = _copy(trace, tmp_path, "clibad.lbatrace")
        truncate_trace(path, keep_bytes=_HEADER.size + 1)
        assert trace_cli(["verify", "--repair", path]) == 1
        assert "unrecoverable" in capsys.readouterr().out
