"""Replay tests: capture-once/replay-many must reproduce the live run.

The acceptance bar of the trace subsystem: a trace captured from a
monitored workload, replayed through a fresh lifeguard, produces the
identical error reports and delivered-event counts as the live run, and a
parallel sharded replay matches the equivalent sequential sharded replay
stat for stat.
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import BASELINE_CONFIG, OPTIMIZED_CONFIG
from repro.isa.machine import Machine
from repro.lba.platform import LBASystem
from repro.lifeguards import AddrCheck, MemCheck, TaintCheck
from repro.lifeguards.base import MetadataMapper
from repro.lifeguards.reports import merge_reports, report_counts
from repro.faultinject.corrupt import flip_chunk_bytes
from repro.trace.replay import (
    MAX_DEFAULT_WORKERS,
    MultiTraceReplay,
    ParallelReplay,
    _contiguous_spans,
    default_workers,
    replay_trace,
)
from repro.trace.supervisor import ReplayError, SupervisorPolicy
from repro.trace.tracefile import TraceFormatError, TraceReader, TraceWriter
from repro.workloads import attacks, bugs
from tests.conftest import build_copy_loop


def capture(tmp_path, program, lifeguard, config=OPTIMIZED_CONFIG, chunk_bytes=256):
    """Run a live monitored run while teeing the log into a trace file."""
    path = tmp_path / "run.trace"
    with TraceWriter(path, chunk_bytes=chunk_bytes) as writer:
        live = LBASystem(Machine(program), lifeguard, config, trace_writer=writer).run("live")
    return str(path), live


class TestCaptureTee:
    def test_trace_captures_every_record(self, tmp_path):
        path, live = capture(tmp_path, build_copy_loop(32), AddrCheck())
        with TraceReader(path) as reader:
            assert reader.num_records == live.producer.records
            assert reader.stats.instructions == live.producer.instructions
            assert reader.stats.annotations == live.producer.annotations
            # The producer sizes one continuous stream; the trace file
            # restarts the delta chains at every chunk boundary, so its raw
            # bytes are only slightly larger (cold first record per chunk).
            assert reader.stats.raw_bytes >= live.producer.log_bytes
            overhead = reader.stats.raw_bytes - live.producer.log_bytes
            assert overhead <= reader.num_chunks * 16

    def test_capture_does_not_change_live_result(self, tmp_path):
        plain = LBASystem(Machine(build_copy_loop(32)), AddrCheck(), OPTIMIZED_CONFIG).run()
        _, teed = capture(tmp_path, build_copy_loop(32), AddrCheck())
        assert teed.slowdown == plain.slowdown
        assert teed.dispatch == plain.dispatch


class TestSequentialReplay:
    @pytest.mark.parametrize(
        "program_builder,lifeguard_cls",
        [
            (bugs.use_after_free, AddrCheck),
            (bugs.uninitialized_computation, MemCheck),
            (attacks.buffer_overflow_function_pointer, TaintCheck),
        ],
        ids=["addrcheck", "memcheck", "taintcheck"],
    )
    def test_replay_matches_live_run(self, tmp_path, program_builder, lifeguard_cls):
        path, live = capture(tmp_path, program_builder(), lifeguard_cls())
        replayed = replay_trace(path, lifeguard_cls, OPTIMIZED_CONFIG)
        assert replayed.reports == live.reports
        assert replayed.errors_detected == live.errors_detected > 0
        assert replayed.dispatch.records_consumed == live.dispatch.records_consumed
        assert replayed.dispatch.events_handled == live.dispatch.events_handled
        assert replayed.dispatch.handler_instructions == live.dispatch.handler_instructions
        assert replayed.accelerator == live.accelerator

    def test_replay_respects_config(self, tmp_path):
        path, _ = capture(tmp_path, build_copy_loop(32), MemCheck())
        optimized = replay_trace(path, MemCheck, OPTIMIZED_CONFIG)
        baseline = replay_trace(path, "MemCheck", BASELINE_CONFIG)
        # The baseline pipeline delivers more events (no IT/IF filtering).
        assert baseline.dispatch.events_handled > optimized.dispatch.events_handled

    def test_replay_many_from_one_capture(self, tmp_path):
        path, _ = capture(tmp_path, bugs.use_after_free(), AddrCheck())
        first = replay_trace(path, AddrCheck, OPTIMIZED_CONFIG)
        second = replay_trace(path, AddrCheck, OPTIMIZED_CONFIG)
        assert first.reports == second.reports
        assert first.dispatch == second.dispatch


class TestParallelReplay:
    def test_parallel_matches_sequential_sharded(self, tmp_path):
        path, _ = capture(tmp_path, bugs.use_after_free(), AddrCheck(), chunk_bytes=128)
        replay = ParallelReplay(path, AddrCheck, OPTIMIZED_CONFIG, workers=2)
        assert len(replay.shards()) == 2
        parallel = replay.run()
        sequential = replay.run_sequential()
        assert parallel.workers == 2
        assert parallel.records == sequential.records
        assert parallel.dispatch == sequential.dispatch
        assert parallel.accelerator == sequential.accelerator
        assert parallel.reports == sequential.reports

    def test_shards_partition_all_chunks(self, tmp_path):
        path, _ = capture(tmp_path, build_copy_loop(64), AddrCheck(), chunk_bytes=128)
        for workers in (1, 2, 3, 7):
            replay = ParallelReplay(path, AddrCheck, workers=workers)
            spans = replay.shards()
            flattened = [index for span in spans for index in span]
            assert flattened == list(range(replay.num_chunks))
            assert all(span for span in spans)

    def test_single_worker_is_sequential(self, tmp_path):
        path, _ = capture(tmp_path, build_copy_loop(16), AddrCheck())
        replay = ParallelReplay(path, AddrCheck, OPTIMIZED_CONFIG, workers=1)
        result = replay.run()
        assert result.workers == 1

    def test_worker_count_validation(self, tmp_path):
        path, _ = capture(tmp_path, build_copy_loop(8), AddrCheck())
        for bad in (0, -1, -100):
            with pytest.raises(ValueError, match="workers must be >= 1"):
                ParallelReplay(path, AddrCheck, workers=bad)

    def test_default_worker_count_is_bounded_cpu_count(self, tmp_path):
        path, _ = capture(tmp_path, build_copy_loop(8), AddrCheck())
        replay = ParallelReplay(path, AddrCheck)
        assert replay.workers == default_workers()
        assert 1 <= replay.workers <= MAX_DEFAULT_WORKERS
        assert replay.workers <= max(os.cpu_count() or 1, 1)

    def test_unknown_lifeguard_name(self, tmp_path):
        path, _ = capture(tmp_path, build_copy_loop(8), AddrCheck())
        with pytest.raises(KeyError, match="unknown lifeguard"):
            replay_trace(path, "NotALifeguard")


class TestContiguousSpans:
    """Properties of the chunk partitioner every shard plan relies on."""

    @given(num_chunks=st.integers(0, 500), workers=st.integers(1, 64))
    @settings(max_examples=60, deadline=None)
    def test_spans_partition_chunk_range_exactly(self, num_chunks, workers):
        spans = _contiguous_spans(num_chunks, workers)
        # Exact partition, order preserved: concatenating the spans yields
        # range(num_chunks), so every chunk is replayed exactly once and
        # chunk order (hence merge determinism) is preserved.
        assert [index for span in spans for index in span] == list(range(num_chunks))

    @given(num_chunks=st.integers(0, 500), workers=st.integers(1, 64))
    @settings(max_examples=60, deadline=None)
    def test_span_count_and_balance(self, num_chunks, workers):
        spans = _contiguous_spans(num_chunks, workers)
        # Never more spans than workers or chunks, never an empty span
        # (workers > num_chunks collapses to one span per chunk), and the
        # load is balanced to within one chunk.
        assert len(spans) == min(workers, num_chunks)
        assert all(spans)
        if spans:
            sizes = [len(span) for span in spans]
            assert max(sizes) - min(sizes) <= 1

    @given(num_chunks=st.integers(1, 500))
    @settings(max_examples=30, deadline=None)
    def test_each_span_is_contiguous(self, num_chunks):
        for workers in (1, 2, 3, num_chunks, num_chunks + 7):
            for span in _contiguous_spans(num_chunks, workers):
                assert span == list(range(span[0], span[-1] + 1))

    def test_empty_trace_yields_no_spans(self):
        assert _contiguous_spans(0, 8) == []


class TestMultiTraceReplay:
    """Per-core trace sets (multi-core capture) replayed as one merged run."""

    def _capture_set(self, tmp_path, programs):
        paths = []
        for core, program in enumerate(programs):
            path = tmp_path / f"core{core}.lbatrace"
            with TraceWriter(path, chunk_bytes=256) as writer:
                writer.extend(Machine(program).trace())
            paths.append(str(path))
        return paths

    def test_parallel_matches_sequential(self, tmp_path):
        paths = self._capture_set(
            tmp_path, [bugs.use_after_free(), bugs.double_free(), build_copy_loop(32)]
        )
        replay = MultiTraceReplay(paths, AddrCheck, OPTIMIZED_CONFIG, workers=2)
        parallel = replay.run()
        sequential = replay.run_sequential()
        assert parallel.records == sequential.records
        assert parallel.dispatch == sequential.dispatch
        assert parallel.accelerator == sequential.accelerator
        assert parallel.reports == sequential.reports
        assert parallel.chunks == sum(replay.chunks_per_trace)

    def test_merged_set_equals_per_file_merge(self, tmp_path):
        """The set replay is the deterministic merge of per-file replays."""
        paths = self._capture_set(tmp_path, [bugs.use_after_free(), bugs.double_free()])
        combined = MultiTraceReplay(paths, AddrCheck, OPTIMIZED_CONFIG, workers=1).run()
        individual = [replay_trace(path, AddrCheck, OPTIMIZED_CONFIG) for path in paths]
        assert combined.records == sum(r.records for r in individual)
        assert combined.reports == merge_reports(*[r.reports for r in individual])

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="at least one trace"):
            MultiTraceReplay([], AddrCheck)
        paths = self._capture_set(tmp_path, [build_copy_loop(8)])
        with pytest.raises(ValueError, match="workers must be >= 1"):
            MultiTraceReplay(paths, AddrCheck, workers=0)
        assert MultiTraceReplay(paths, AddrCheck).workers == default_workers()


class TestEmptyTrace:
    """A zero-record capture replays to zeroed stats, never a crash."""

    def _empty_trace(self, tmp_path):
        path = tmp_path / "empty.trace"
        with TraceWriter(path):
            pass
        return str(path)

    def test_sequential_replay_of_empty_trace(self, tmp_path):
        result = replay_trace(self._empty_trace(tmp_path), AddrCheck)
        assert result.records == 0
        assert result.chunks == 0
        assert result.reports == []
        assert not result.degraded and result.skipped_records == 0

    def test_records_per_second_guards_zero_wall(self, tmp_path):
        result = replay_trace(self._empty_trace(tmp_path), AddrCheck)
        result.wall_seconds = 0.0
        assert result.records_per_second == 0.0
        result.wall_seconds = -1.0
        assert result.records_per_second == 0.0

    def test_parallel_replay_of_empty_trace(self, tmp_path):
        path = self._empty_trace(tmp_path)
        replay = ParallelReplay(path, AddrCheck, workers=4)
        assert replay.shards() == []
        result = replay.run()
        assert result.records == 0
        assert result.records_per_second == 0.0
        assert result.worker_timings == []

    def test_supervised_replay_of_empty_trace(self, tmp_path):
        """An explicit policy forces the supervisor path even with no work."""
        result = ParallelReplay(
            self._empty_trace(tmp_path), AddrCheck, workers=2,
            policy=SupervisorPolicy(timeout_seconds=5.0),
        ).run()
        assert result.records == 0
        assert result.failures == []


class TestQuarantine:
    """Damaged chunks: strict raises naming the chunk, degrade accounts."""

    def _damaged_capture(self, tmp_path):
        path, live = capture(tmp_path, bugs.use_after_free(), AddrCheck(),
                             chunk_bytes=128)
        with TraceReader(path) as reader:
            chunk = reader.num_chunks // 2
            lost = reader.chunks[chunk].records
            total = reader.num_records
        flip_chunk_bytes(path, chunk, seed=0)
        return path, chunk, lost, total

    def test_invalid_policy_rejected(self, tmp_path):
        path, _ = capture(tmp_path, build_copy_loop(8), AddrCheck())
        with pytest.raises(ValueError, match="quarantine must be one of"):
            replay_trace(path, AddrCheck, quarantine="panic")
        with pytest.raises(ValueError, match="quarantine must be one of"):
            ParallelReplay(path, AddrCheck, quarantine="retry")

    def test_parallel_degrade_quarantines_exactly(self, tmp_path):
        path, chunk, lost, total = self._damaged_capture(tmp_path)
        result = ParallelReplay(
            path, AddrCheck, OPTIMIZED_CONFIG, workers=2, quarantine="degrade"
        ).run()
        assert [c.chunk for c in result.skipped_chunks] == [chunk]
        assert result.skipped_chunks[0].reason == "corrupt"
        assert result.skipped_records == lost
        assert result.records == total - lost
        assert result.fault_counters["chunks_quarantined"] == 1
        assert result.fault_counters["records_quarantined"] == lost

    def test_parallel_degrade_matches_sequential_degrade(self, tmp_path):
        path, _chunk, _lost, _total = self._damaged_capture(tmp_path)
        replay = ParallelReplay(
            path, AddrCheck, OPTIMIZED_CONFIG, workers=2, quarantine="degrade"
        )
        parallel = replay.run()
        sequential = replay.run_sequential()
        assert parallel.records == sequential.records
        assert parallel.dispatch == sequential.dispatch
        assert parallel.reports == sequential.reports
        assert [c.chunk for c in parallel.skipped_chunks] == [
            c.chunk for c in sequential.skipped_chunks
        ]

    def test_parallel_strict_raises_replay_error(self, tmp_path):
        """A deterministic worker exception fails fast: no retry storm,
        a ReplayError carrying the shard span and lifeguard, and no
        leaked children (the supervisor's terminate-all teardown)."""
        path, chunk, _lost, _total = self._damaged_capture(tmp_path)
        with pytest.raises(ReplayError) as excinfo:
            ParallelReplay(
                path, AddrCheck, OPTIMIZED_CONFIG, workers=2, quarantine="strict"
            ).run()
        error = excinfo.value
        assert chunk in error.chunks
        assert error.trace_path == path
        assert error.lifeguard == AddrCheck.name
        assert "TraceFormatError" in str(error)

    def test_sequential_strict_raises_format_error(self, tmp_path):
        path, chunk, _lost, _total = self._damaged_capture(tmp_path)
        with pytest.raises(TraceFormatError, match=f"chunk {chunk}"):
            replay_trace(path, AddrCheck, OPTIMIZED_CONFIG)

    def test_multitrace_degrade_quarantines_per_file(self, tmp_path):
        paths = []
        for core, program in enumerate([bugs.use_after_free(), bugs.double_free()]):
            path = tmp_path / f"core{core}.lbatrace"
            with TraceWriter(path, chunk_bytes=256) as writer:
                writer.extend(Machine(program).trace())
            paths.append(str(path))
        with TraceReader(paths[1]) as reader:
            lost = reader.chunks[0].records
        flip_chunk_bytes(paths[1], 0, seed=0)
        result = MultiTraceReplay(
            paths, AddrCheck, OPTIMIZED_CONFIG, workers=2, quarantine="degrade"
        ).run()
        assert [(c.trace_path, c.chunk) for c in result.skipped_chunks] == [
            (paths[1], 0)
        ]
        assert result.skipped_records == lost


class TestSupervisorExports:
    def test_package_exports_supervision_api(self):
        import repro.trace as trace

        for name in ("ReplayError", "SupervisorPolicy", "ShardFailure",
                     "QuarantinedChunk", "QUARANTINE_POLICIES", "ShardTask",
                     "verify_trace", "TraceAudit", "ChunkAudit"):
            assert hasattr(trace, name), name
        assert trace.QUARANTINE_POLICIES == ("strict", "degrade")


class TestReportMerging:
    def test_merge_is_order_insensitive(self, tmp_path):
        path, live = capture(tmp_path, bugs.use_after_free(), AddrCheck())
        merged_forward = merge_reports(live.reports[: len(live.reports) // 2],
                                       live.reports[len(live.reports) // 2:])
        merged_reverse = merge_reports(live.reports[len(live.reports) // 2:],
                                       live.reports[: len(live.reports) // 2])
        assert merged_forward == merged_reverse
        assert sorted(r.sort_key() for r in live.reports) == [
            r.sort_key() for r in merged_forward
        ]

    def test_report_counts(self, tmp_path):
        path, live = capture(tmp_path, bugs.use_after_free(), AddrCheck())
        counts = report_counts(live.reports)
        assert sum(counts.values()) == len(live.reports)


class TestMapperAccessor:
    def test_public_accessor_lazily_creates(self):
        lifeguard = AddrCheck()
        mapper = lifeguard.mapper()
        assert isinstance(mapper, MetadataMapper)
        assert lifeguard.mapper() is mapper

    def test_stats_without_mapper_are_empty(self):
        lifeguard = AddrCheck()
        assert lifeguard.mapper_stats().translations == 0
