"""Shared-memory column transport: round-trips, lifecycle, equivalence.

The zero-copy replay path has three separable contracts, tested here:

* :meth:`RecordColumns.to_buffers` / :meth:`RecordColumns.from_buffers`
  are exact inverses over any record stream whose values fit int64 --
  including the run table, the sparse immediates/objects members, and
  columns that are themselves memoryview-backed (a re-pack of an attached
  chunk);
* :class:`SegmentPool` owns the segment lifecycle: segments exist exactly
  between ``prepare`` and ``release``/``release_all``, damaged chunks are
  left out of the segment for in-worker fallback, and nothing survives in
  ``/dev/shm`` after any exit path (the autouse ``shm_leak_gate`` fixture
  re-checks this after every test in the suite);
* a shared-memory parallel replay is bit-identical to the sequential
  reference -- stats, reports and quarantine accounting -- and ships
  compact shard results instead of full pickles.
"""

import glob
import os
import pickle
import random
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import OPTIMIZED_CONFIG
from repro.core.events import EVENT_TYPES, AnnotationRecord, InstructionRecord
from repro.faultinject.corrupt import flip_chunk_bytes
from repro.isa.machine import Machine
from repro.lba.platform import LBASystem
from repro.lifeguards import AddrCheck
from repro.trace.codec import RecordColumns
from repro.trace.replay import ParallelReplay, ShardTask, _replay_shard
from repro.trace.shm import (
    SEGMENT_PREFIX,
    SegmentPool,
    attach_segment,
    shared_memory_available,
)
from repro.trace.supervisor import ReplayError
from repro.trace.tracefile import TraceReader, TraceWriter
from repro.workloads import bugs
from tests.conftest import build_copy_loop

needs_shm = pytest.mark.skipif(
    not shared_memory_available(), reason="multiprocessing.shared_memory unavailable"
)

_INSTRUCTION_TYPES = [t for t in EVENT_TYPES if not t.is_rare]
_ANNOTATION_TYPES = [t for t in EVENT_TYPES if t.is_rare]

#: Wide but int64-safe operand bound: the packed columns are ``array("q")``,
#: so round-trip streams stay inside int64 (the overflow test goes beyond).
_WIDE = 2 ** 62


def _record_stream(seed: int, count: int):
    """Seeded record mix covering every packed member of the layout."""
    rng = random.Random(seed)
    records = []
    for _ in range(count):
        addr = rng.randrange(1 << 40)
        if rng.random() < 0.2:
            records.append(AnnotationRecord(
                event_type=rng.choice(_ANNOTATION_TYPES),
                address=rng.choice([None, addr]),
                size=rng.choice([0, 0, 1, 4096]),
                thread_id=rng.randrange(4),
                pc=rng.choice([0, rng.randrange(1 << 32)]),
                payload=rng.choice([None, 0, -1, rng.randrange(-_WIDE, _WIDE)]),
            ))
        else:
            records.append(InstructionRecord(
                pc=rng.randrange(1 << 40),
                event_type=rng.choice(_INSTRUCTION_TYPES),
                dest_reg=rng.choice([None, rng.randrange(8)]),
                src_reg=rng.choice([None, rng.randrange(8)]),
                dest_addr=rng.choice([None, addr]),
                src_addr=rng.choice([None, addr ^ rng.randrange(1 << 16)]),
                size=rng.choice([0, 1, 2, 4, 8]),
                is_load=rng.random() < 0.5,
                is_store=rng.random() < 0.5,
                base_reg=rng.choice([None, rng.randrange(8)]),
                index_reg=rng.choice([None, rng.randrange(8)]),
                is_cond_test=rng.random() < 0.1,
                is_indirect_jump=rng.random() < 0.1,
                thread_id=rng.randrange(4),
                immediate=rng.choice([None, 0, -1, rng.randrange(-_WIDE, _WIDE)]),
            ))
    return records


def _pack_unpack(columns: RecordColumns) -> RecordColumns:
    """to_buffers -> one contiguous buffer -> from_buffers, like the pool."""
    layout, parts = columns.to_buffers()
    buffer = bytearray(layout.nbytes)
    for (name, typecode, offset, nbytes), part in zip(layout.fields, parts):
        if nbytes:
            buffer[offset:offset + nbytes] = bytes(part)
    return RecordColumns.from_buffers(layout, buffer)


def _assert_columns_equal(rebuilt: RecordColumns, original: RecordColumns) -> None:
    assert rebuilt.n == original.n
    assert rebuilt.records() == original.records()
    assert rebuilt.runs == original.runs
    assert rebuilt.immediates == original.immediates
    assert rebuilt.objects == original.objects


def _shm_segments():
    """Replay segments currently visible in /dev/shm (empty off-Linux)."""
    return sorted(glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*"))


def _make_task(path: str, chunks=None, **overrides) -> ShardTask:
    with TraceReader(path) as reader:
        counts = reader.chunk_record_counts()
        if chunks is None:
            chunks = tuple(range(reader.num_chunks))
    return ShardTask(
        trace_path=path,
        lifeguard=AddrCheck.name,
        config=OPTIMIZED_CONFIG,
        chunks=tuple(chunks),
        chunk_records=tuple(counts[i] for i in chunks),
        **overrides,
    )


def _capture(tmp_path, program, chunk_bytes=128):
    path = tmp_path / "run.trace"
    with TraceWriter(path, chunk_bytes=chunk_bytes) as writer:
        live = LBASystem(
            Machine(program), AddrCheck(), OPTIMIZED_CONFIG, trace_writer=writer
        ).run("live")
    return str(path), live


class TestColumnBufferRoundTrip:
    """to_buffers/from_buffers are exact inverses (satellite 4)."""

    @given(seed=st.integers(0, 2 ** 32 - 1), count=st.integers(0, 120))
    @settings(max_examples=40, deadline=None)
    def test_round_trip_equals_original(self, seed, count):
        records = _record_stream(seed, count)
        columns = RecordColumns.from_records(records)
        rebuilt = _pack_unpack(columns)
        _assert_columns_equal(rebuilt, columns)
        assert rebuilt.records() == records

    @given(seed=st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_memoryview_backed_columns_repack(self, seed):
        """A from_buffers instance (memoryview columns) packs again cleanly."""
        columns = RecordColumns.from_records(_record_stream(seed, 60))
        first = _pack_unpack(columns)
        assert any(
            isinstance(getattr(first, name), memoryview)
            for name in ("flags", "pc", "dest_addr")
        )
        second = _pack_unpack(first)
        _assert_columns_equal(second, columns)

    def test_round_trip_empty(self):
        rebuilt = _pack_unpack(RecordColumns.from_records([]))
        assert rebuilt.n == 0
        assert rebuilt.records() == []
        assert rebuilt.runs == []
        assert rebuilt.immediates == {}
        assert rebuilt.objects == {}

    def test_round_trip_real_capture_chunks(self, tmp_path):
        """Every chunk of a real capture survives the pack/unpack cycle."""
        path, _ = _capture(tmp_path, bugs.use_after_free())
        with TraceReader(path) as reader:
            assert reader.num_chunks > 1
            for index in range(reader.num_chunks):
                columns = reader.read_chunk_columns(index)
                _assert_columns_equal(_pack_unpack(columns), columns)

    def test_value_outside_int64_raises_value_error(self):
        record = InstructionRecord(pc=2 ** 63, event_type=_INSTRUCTION_TYPES[0])
        columns = RecordColumns.from_records([record])
        with pytest.raises(ValueError, match="outside int64"):
            columns.to_buffers()

    def test_release_drops_views_and_fails_loudly(self):
        rebuilt = _pack_unpack(RecordColumns.from_records(_record_stream(7, 20)))
        rebuilt.release()
        assert rebuilt.flags == ()
        assert rebuilt.pc == ()
        # Byte-wide columns were materialised, not viewed: they survive.
        assert isinstance(rebuilt.kind, bytearray)
        with pytest.raises(Exception):
            rebuilt.record(0)


@needs_shm
class TestSegmentPool:
    """Segment lifecycle: created on prepare, gone on release (satellite 3)."""

    def test_prepare_packs_and_release_unlinks(self, tmp_path):
        path, _ = _capture(tmp_path, build_copy_loop(64))
        pool = SegmentPool()
        before = _shm_segments()
        task = pool.prepare(_make_task(path))
        try:
            assert task.segment is not None
            assert len(task.segment.chunks) == len(task.chunks)
            assert pool.counters()["shm_segments"] == 1
            assert pool.counters()["shm_chunks"] == len(task.chunks)
            if os.path.isdir("/dev/shm"):
                created = set(_shm_segments()) - set(before)
                assert created == {f"/dev/shm/{task.segment.name}"}
            # A worker-side attach sees the same bytes the pool wrote.
            shm = attach_segment(task.segment.name)
            try:
                packed = task.segment.chunks[0]
                region = shm.buf[packed.offset:packed.offset + packed.layout.nbytes]
                columns = RecordColumns.from_buffers(packed.layout, region)
                try:
                    with TraceReader(path) as reader:
                        expected = reader.read_chunk_columns(packed.chunk)
                    _assert_columns_equal(columns, expected)
                    # The zero-copy contract: the segment cannot close while
                    # column views are exported, and can once released.
                    with pytest.raises(BufferError):
                        shm.close()
                finally:
                    columns.release()
                    region.release()
            finally:
                shm.close()
        finally:
            pool.release(task)
            pool.release_all()
        assert _shm_segments() == before
        with pytest.raises(OSError):
            attach_segment(task.segment.name)

    def test_prepare_is_idempotent_across_retries(self, tmp_path):
        path, _ = _capture(tmp_path, build_copy_loop(32))
        pool = SegmentPool()
        task = pool.prepare(_make_task(path))
        try:
            assert pool.prepare(task) is task
            assert pool.counters()["shm_segments"] == 1
        finally:
            pool.release_all()

    def test_damaged_chunk_left_for_worker_fallback(self, tmp_path):
        path, _ = _capture(tmp_path, build_copy_loop(64))
        with TraceReader(path) as reader:
            damaged = reader.num_chunks // 2
        flip_chunk_bytes(path, damaged, seed=0)
        pool = SegmentPool()
        task = pool.prepare(_make_task(path))
        try:
            assert task.segment is not None
            packed_chunks = {p.chunk for p in task.segment.chunks}
            assert damaged not in packed_chunks
            assert packed_chunks == set(task.chunks) - {damaged}
            assert pool.counters()["shm_fallback_chunks"] == 1
        finally:
            pool.release_all()

    def test_skip_set_chunks_are_not_packed(self, tmp_path):
        path, _ = _capture(tmp_path, build_copy_loop(64))
        task = _make_task(path)
        skipped = frozenset(task.chunks[:1])
        pool = SegmentPool()
        task = pool.prepare(_make_task(path, skip=skipped))
        try:
            assert {p.chunk for p in task.segment.chunks} == set(task.chunks) - skipped
        finally:
            pool.release_all()

    def test_disabled_pool_is_inert(self, tmp_path):
        path, _ = _capture(tmp_path, build_copy_loop(16))
        pool = SegmentPool(enabled=False)
        task = _make_task(path)
        assert pool.prepare(task) is task
        assert pool.counters() == {}
        pool.release_all()  # must be safe with nothing to do

    def test_release_all_is_reentrant(self, tmp_path):
        path, _ = _capture(tmp_path, build_copy_loop(32))
        pool = SegmentPool()
        before = _shm_segments()
        pool.prepare(_make_task(path))
        pool.release_all()
        pool.release_all()
        assert _shm_segments() == before


@needs_shm
class TestSharedMemoryReplay:
    """Parallel shm replay is bit-identical to the sequential reference."""

    def test_matches_sequential_and_uses_segments(self, tmp_path):
        path, _ = _capture(tmp_path, bugs.use_after_free())
        replay = ParallelReplay(
            path, AddrCheck, OPTIMIZED_CONFIG, workers=3, shared_memory=True
        )
        parallel = replay.run()
        sequential = replay.run_sequential()
        assert parallel.dispatch == sequential.dispatch
        assert parallel.accelerator == sequential.accelerator
        assert parallel.reports == sequential.reports
        assert parallel.errors_detected > 0
        assert parallel.records == sequential.records
        assert parallel.fault_counters["shm_segments"] >= 1
        assert parallel.fault_counters["shm_chunks"] == parallel.chunks

    def test_opt_out_matches_and_creates_no_segments(self, tmp_path):
        path, _ = _capture(tmp_path, bugs.use_after_free())
        with_shm = ParallelReplay(
            path, AddrCheck, OPTIMIZED_CONFIG, workers=2, shared_memory=True
        ).run()
        without = ParallelReplay(
            path, AddrCheck, OPTIMIZED_CONFIG, workers=2, shared_memory=False
        ).run()
        assert without.dispatch == with_shm.dispatch
        assert without.accelerator == with_shm.accelerator
        assert without.reports == with_shm.reports
        assert "shm_segments" not in without.fault_counters

    def test_degrade_quarantine_identical_with_shm(self, tmp_path):
        """Damaged chunk: shm and classic replay quarantine identically."""
        path, _ = _capture(tmp_path, bugs.use_after_free())
        with TraceReader(path) as reader:
            damaged = reader.num_chunks // 2
        flip_chunk_bytes(path, damaged, seed=0)
        results = [
            ParallelReplay(
                path, AddrCheck, OPTIMIZED_CONFIG, workers=2,
                quarantine="degrade", shared_memory=shm,
            ).run()
            for shm in (True, False)
        ]
        with_shm, without = results
        assert [c.chunk for c in with_shm.skipped_chunks] == [damaged]
        assert with_shm.records == without.records
        assert with_shm.dispatch == without.dispatch
        assert with_shm.reports == without.reports
        assert with_shm.skipped_records == without.skipped_records
        assert (
            with_shm.fault_counters["records_quarantined"]
            == without.fault_counters["records_quarantined"]
        )

    def test_strict_failure_leaves_no_segments(self, tmp_path):
        path, _ = _capture(tmp_path, bugs.use_after_free())
        with TraceReader(path) as reader:
            flip_chunk_bytes(path, reader.num_chunks // 2, seed=0)
        before = _shm_segments()
        with pytest.raises(ReplayError):
            ParallelReplay(
                path, AddrCheck, OPTIMIZED_CONFIG, workers=2,
                quarantine="strict", shared_memory=True,
            ).run()
        assert _shm_segments() == before

    def test_timing_breakdown_has_transport_fields(self, tmp_path):
        path, _ = _capture(tmp_path, bugs.use_after_free())
        result = ParallelReplay(
            path, AddrCheck, OPTIMIZED_CONFIG, workers=3,
            collect_timing=True, shared_memory=True,
        ).run()
        assert result.worker_timings
        for timing in result.worker_timings:
            assert timing["shm_attach_s"] >= 0.0
            assert timing["predecode_s"] > 0.0
            # Decode moved to the parent: packed shards decode nothing.
            assert timing["decode_s"] == 0.0
            # Per-shard hand-off cost, not the parent's total elapsed time
            # (the old bug): it cannot exceed this shard's own lifetime.
            assert 0.0 <= timing["ipc_s"] < result.wall_seconds

    def test_sequential_reference_has_no_ipc(self, tmp_path):
        path, _ = _capture(tmp_path, bugs.use_after_free())
        result = ParallelReplay(
            path, AddrCheck, OPTIMIZED_CONFIG, workers=3, collect_timing=True
        ).run_sequential()
        for timing in result.worker_timings:
            assert timing["ipc_s"] == 0.0


class TestShardResultTransport:
    """Shard results pickle as compact primitive tuples, not object graphs."""

    def _shard_result(self, tmp_path):
        path, _ = _capture(tmp_path, bugs.use_after_free())
        return _replay_shard(_make_task(path, collect_timing=True))

    def test_pickle_round_trip(self, tmp_path):
        result = self._shard_result(tmp_path)
        assert result.reports  # use-after-free produces at least one report
        clone = pickle.loads(pickle.dumps(result))
        assert clone.records == result.records
        assert clone.dispatch == result.dispatch
        assert clone.accelerator == result.accelerator
        assert clone.reports == result.reports
        assert clone.skipped == result.skipped
        assert clone.timing == result.timing
        assert clone.detail == result.detail

    def test_pickled_state_is_primitive(self, tmp_path):
        state = self._shard_result(tmp_path).__getstate__()
        records, dispatch, accelerator, reports, skipped, _timing, _detail = state
        assert isinstance(records, int)
        assert isinstance(dispatch, tuple)
        assert isinstance(accelerator, tuple)
        for report in reports:
            assert isinstance(report, tuple) and len(report) == 6
            assert all(
                value is None or isinstance(value, (int, str)) for value in report
            )
        assert all(isinstance(chunk, tuple) for chunk in skipped)


@needs_shm
class TestResourceTrackerHygiene:
    """No resource_tracker noise: the fork-shared tracker sees one unlink."""

    def test_replay_process_exits_clean(self, tmp_path):
        root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        code = (
            "import sys\n"
            "from repro.core.config import OPTIMIZED_CONFIG\n"
            "from repro.isa.machine import Machine\n"
            "from repro.lba.platform import LBASystem\n"
            "from repro.lifeguards import AddrCheck\n"
            "from repro.trace.replay import ParallelReplay\n"
            "from repro.trace.tracefile import TraceWriter\n"
            "from repro.workloads import bugs\n"
            "path = sys.argv[1]\n"
            "with TraceWriter(path, chunk_bytes=128) as writer:\n"
            "    LBASystem(Machine(bugs.use_after_free()), AddrCheck(),\n"
            "              OPTIMIZED_CONFIG, trace_writer=writer).run()\n"
            "result = ParallelReplay(path, AddrCheck, OPTIMIZED_CONFIG,\n"
            "                        workers=2, shared_memory=True).run()\n"
            "assert result.fault_counters.get('shm_segments', 0) >= 1\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(root, "src")
        proc = subprocess.run(
            [sys.executable, "-c", code, str(tmp_path / "t.trace")],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "resource_tracker" not in proc.stderr
        assert "leaked" not in proc.stderr
