"""Trace-file tests: chunked round-trip, index integrity, corruption paths."""

import random
import struct

import pytest

from repro.core.events import AnnotationRecord, EventType, InstructionRecord
from repro.trace.tracefile import (
    TraceFormatError,
    TraceReader,
    TraceWriter,
)
from tests.trace.test_codec import _random_record


def _sample_records(count=500, seed=11):
    rng = random.Random(seed)
    return [_random_record(rng) for _ in range(count)]


def _write_trace(path, records, chunk_bytes=512, compress=True):
    with TraceWriter(path, chunk_bytes=chunk_bytes, compress=compress) as writer:
        writer.extend(records)
    return writer.stats


@pytest.mark.parametrize("compress", [False, True], ids=["raw", "zlib"])
class TestRoundTrip:
    def test_records_survive_chunking(self, tmp_path, compress):
        records = _sample_records()
        path = tmp_path / "t.trace"
        stats = _write_trace(path, records, compress=compress)
        assert stats.chunks > 1  # small chunk_bytes forces multiple chunks
        with TraceReader(path) as reader:
            assert list(reader) == records
            assert reader.num_records == len(records)
            assert reader.num_chunks == stats.chunks

    def test_chunks_decode_independently_and_in_any_order(self, tmp_path, compress):
        records = _sample_records()
        path = tmp_path / "t.trace"
        _write_trace(path, records, compress=compress)
        with TraceReader(path) as reader:
            chunks = [reader.read_chunk(i) for i in reversed(range(reader.num_chunks))]
            recovered = [record for chunk in reversed(chunks) for record in chunk]
            assert recovered == records
            assert sum(info.records for info in reader.chunks) == len(records)

    def test_stats_roundtrip_through_index(self, tmp_path, compress):
        records = _sample_records()
        path = tmp_path / "t.trace"
        written = _write_trace(path, records, compress=compress)
        with TraceReader(path) as reader:
            assert reader.stats.records == written.records
            assert reader.stats.instructions == written.instructions
            assert reader.stats.annotations == written.annotations
            assert reader.stats.raw_bytes == written.raw_bytes
            assert reader.stats.stored_bytes == written.stored_bytes


class TestCompression:
    def test_zlib_shrinks_storage(self, tmp_path):
        # A loopy record stream is highly redundant; zlib must win.
        records = [
            InstructionRecord(pc=0x1000 + 4 * (i % 16), event_type=EventType.MEM_TO_REG,
                              dest_reg=1, src_addr=0x0900_0000 + 4 * (i % 256),
                              size=4, is_load=True)
            for i in range(4000)
        ]
        raw = _write_trace(tmp_path / "raw.trace", records, compress=False)
        packed = _write_trace(tmp_path / "zlib.trace", records, compress=True)
        assert packed.stored_bytes < raw.stored_bytes
        assert packed.compression_ratio > 1.5
        assert packed.bytes_per_record < 2.0


class TestErrorPaths:
    def test_missing_file_header(self, tmp_path):
        path = tmp_path / "short.trace"
        path.write_bytes(b"LBA")
        with pytest.raises(TraceFormatError, match="shorter than trace header"):
            TraceReader(path)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_bytes(b"NOTTRACE" + b"\x00" * 16)
        with pytest.raises(TraceFormatError, match="bad magic"):
            TraceReader(path)

    def test_unclosed_writer_has_no_index(self, tmp_path):
        path = tmp_path / "open.trace"
        writer = TraceWriter(path, chunk_bytes=64)
        writer.extend(_sample_records(50))
        writer._file.flush()  # simulate a crash before close()
        with pytest.raises(TraceFormatError, match="missing index"):
            TraceReader(path)
        writer.close()
        with TraceReader(path) as reader:
            assert reader.num_records == 50

    def test_truncated_file_detected(self, tmp_path):
        path = tmp_path / "trunc.trace"
        _write_trace(path, _sample_records())
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(TraceFormatError):
            TraceReader(path)

    def test_corrupt_compressed_chunk(self, tmp_path):
        path = tmp_path / "corrupt.trace"
        _write_trace(path, _sample_records(), compress=True)
        with TraceReader(path) as reader:
            chunk = reader.chunks[1]
        data = bytearray(path.read_bytes())
        for i in range(chunk.offset, chunk.offset + chunk.stored_len):
            data[i] ^= 0xA5
        path.write_bytes(bytes(data))
        with TraceReader(path) as reader:
            reader.read_chunk(0)  # untouched chunk still reads fine
            with pytest.raises(TraceFormatError, match="chunk 1"):
                reader.read_chunk(1)

    def test_corrupt_raw_chunk(self, tmp_path):
        path = tmp_path / "corrupt_raw.trace"
        _write_trace(path, _sample_records(), compress=False)
        with TraceReader(path) as reader:
            chunk = reader.chunks[0]
        data = bytearray(path.read_bytes())
        for i in range(chunk.offset, chunk.offset + chunk.stored_len):
            data[i] = 0xFF
        path.write_bytes(bytes(data))
        with TraceReader(path) as reader:
            # The per-chunk CRC catches the damage before the codec runs.
            with pytest.raises(TraceFormatError, match="chunk 0 CRC mismatch"):
                reader.read_chunk(0)

    def test_index_offset_pointing_into_payload(self, tmp_path):
        path = tmp_path / "badidx.trace"
        _write_trace(path, _sample_records())
        data = bytearray(path.read_bytes())
        # Header layout: magic(8) version(2) flags(2) chunk_bytes(4) index_offset(8).
        struct.pack_into("<Q", data, 16, 17)
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError):
            TraceReader(path)

    def test_chunk_index_out_of_range(self, tmp_path):
        path = tmp_path / "range.trace"
        _write_trace(path, _sample_records(20))
        with TraceReader(path) as reader:
            with pytest.raises(IndexError):
                reader.read_chunk(reader.num_chunks)

    def test_append_after_close_rejected(self, tmp_path):
        writer = TraceWriter(tmp_path / "closed.trace")
        writer.close()
        with pytest.raises(ValueError, match="closed"):
            writer.append(AnnotationRecord(EventType.MALLOC, address=1, size=1))
