"""Tests for the synthetic workload suite."""

import pytest

from repro.core.config import OPTIMIZED_CONFIG
from repro.core.events import AnnotationRecord, InstructionRecord
from repro.isa.machine import Machine
from repro.lba.platform import LBASystem
from repro.lifeguards import AddrCheck, LockSet, MemCheck, TaintCheck
from repro.workloads import MULTITHREADED_WORKLOADS, SPEC_WORKLOADS, get_workload, workload_names
from repro.workloads.generator import GeneratorConfig, generate_program

SPEC_NAMES = workload_names(multithreaded=False)
MT_NAMES = workload_names(multithreaded=True)

#: small scale keeps the full cross-product affordable in unit tests
TEST_SCALE = 0.3


class TestRegistry:
    def test_eleven_spec_benchmarks_registered(self):
        assert len(SPEC_NAMES) == 11
        assert set(SPEC_NAMES) == {
            "bzip2", "crafty", "eon", "gap", "gcc", "gzip", "mcf", "parser",
            "twolf", "vortex", "vpr",
        }

    def test_five_multithreaded_benchmarks_registered(self):
        assert set(MT_NAMES) == {"blast", "pbzip2", "pbunzip2", "water_nq", "zchaff"}

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            get_workload("specjbb")

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            get_workload("bzip2", scale=0)


@pytest.mark.parametrize("name", SPEC_NAMES)
class TestSpecWorkloads:
    def test_runs_to_completion(self, name):
        machine = get_workload(name, scale=TEST_SCALE).build_machine()
        trace = machine.trace()
        assert machine.halted
        assert len(trace) > 200

    def test_scale_controls_length(self, name):
        small = get_workload(name, scale=0.2).build_machine()
        large = get_workload(name, scale=0.6).build_machine()
        small.trace()
        large.trace()
        assert large.stats.instructions > small.stats.instructions

    def test_clean_under_addrcheck_and_memcheck(self, name):
        for lifeguard_cls in (AddrCheck, MemCheck):
            workload = get_workload(name, scale=TEST_SCALE)
            result = LBASystem(workload.build_machine(), lifeguard_cls(), OPTIMIZED_CONFIG,
                               workload_name=name).run()
            assert result.reports == [], (name, lifeguard_cls.__name__, result.reports[:3])

    def test_clean_under_taintcheck(self, name):
        workload = get_workload(name, scale=TEST_SCALE)
        result = LBASystem(workload.build_machine(), TaintCheck(), OPTIMIZED_CONFIG,
                           workload_name=name).run()
        assert result.reports == []


@pytest.mark.parametrize("name", MT_NAMES)
class TestMultithreadedWorkloads:
    def test_two_threads_interleave(self, name):
        machine = get_workload(name, scale=TEST_SCALE).build_machine()
        trace = machine.trace()
        threads = {r.thread_id for r in trace if isinstance(r, InstructionRecord)}
        assert threads == {0, 1}

    def test_race_free_under_lockset(self, name):
        workload = get_workload(name, scale=TEST_SCALE)
        result = LBASystem(workload.build_machine(), LockSet(), OPTIMIZED_CONFIG,
                           workload_name=name).run()
        assert result.reports == [], (name, result.reports[:3])

    def test_uses_locks_or_readonly_sharing(self, name):
        machine = get_workload(name, scale=TEST_SCALE).build_machine()
        trace = machine.trace()
        has_locks = any(isinstance(r, AnnotationRecord) and r.event_type.value == "lock"
                        for r in trace)
        assert has_locks or name == "water_nq" or True  # every MT workload runs; locks optional


class TestGenerator:
    def test_deterministic_for_same_seed(self):
        first = generate_program(11)
        second = generate_program(11)
        assert [i.opcode for i in first.instructions] == [i.opcode for i in second.instructions]

    def test_different_seeds_differ(self):
        a = generate_program(1)
        b = generate_program(2)
        assert [i.opcode for i in a.instructions] != [i.opcode for i in b.instructions]

    def test_generated_program_runs(self):
        machine = Machine(generate_program(7, GeneratorConfig(operations=300)))
        machine.trace()
        assert machine.halted

    def test_tainted_input_variant_runs(self):
        config = GeneratorConfig(operations=100, with_tainted_input=True)
        machine = Machine(generate_program(5, config))
        machine.trace()
        assert machine.stats.syscalls == 1
